package mpi

import (
	"fmt"

	"repro/internal/node"
	"repro/internal/vm"
)

// Collective tag space, kept away from user tags.
const (
	tagBarrier   = 1 << 20
	tagBcast     = 2 << 20
	tagReduce    = 3 << 20
	tagAllreduce = 4 << 20
	tagAlltoall  = 5 << 20
)

// ReduceOp combines two float64 values (Sum, Max, ...).
type ReduceOp func(a, b float64) float64

// Sum and Max are the reduce operations the NAS kernels need.
var (
	Sum ReduceOp = func(a, b float64) float64 { return a + b }
	Max ReduceOp = func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
)

// scratch returns a persistent internal buffer of at least n bytes,
// allocated through the rank's allocation library — the preloaded library
// intercepts the MPI library's own allocations too, so internal buffers
// follow the same placement policy as user memory.
func (r *Rank) scratch(n uint64) (vm.VA, error) {
	if r.scratchSize >= n {
		return r.scratchVA, nil
	}
	if r.scratchVA != 0 {
		if err := r.Free(r.scratchVA); err != nil {
			return 0, err
		}
	}
	if n < 64<<10 {
		n = 64 << 10
	}
	va, err := r.Malloc(n)
	if err != nil {
		return 0, err
	}
	r.scratchVA, r.scratchSize = va, n
	return va, nil
}

// Barrier blocks until all ranks arrive (dissemination algorithm).
func (r *Rank) Barrier() error {
	start := r.clock.Now()
	outer := r.enterMPI()
	defer func() { r.exitMPI("Barrier", start, outer) }()
	p := r.Size()
	for k, round := 1, 0; k < p; k, round = k<<1, round+1 {
		dst := (r.id + k) % p
		src := (r.id - k + p) % p
		if _, err := r.Sendrecv(dst, tagBarrier+round, 0, 0, src, tagBarrier+round, 0, 0); err != nil {
			return fmt.Errorf("mpi: barrier round %d: %w", round, err)
		}
	}
	return nil
}

// Bcast broadcasts n bytes at va from root to all ranks (binomial tree).
func (r *Rank) Bcast(root int, va vm.VA, n int) error {
	start := r.clock.Now()
	outer := r.enterMPI()
	defer func() { r.exitMPI("Bcast", start, outer) }()
	p := r.Size()
	if p == 1 {
		return nil
	}
	// Rotate so the root is virtual rank 0.
	vrank := (r.id - root + p) % p
	// Receive from parent.
	mask := 1
	for ; mask < p; mask <<= 1 {
		if vrank&mask != 0 {
			parent := ((vrank - mask) + root) % p
			if _, err := r.Recv(parent, tagBcast+mask, va, n); err != nil {
				return fmt.Errorf("mpi: bcast recv: %w", err)
			}
			break
		}
	}
	// Forward to children below the received bit.
	for mask >>= 1; mask > 0; mask >>= 1 {
		if vrank+mask < p {
			child := (vrank + mask + root) % p
			if err := r.Send(child, tagBcast+mask, va, n); err != nil {
				return fmt.Errorf("mpi: bcast send: %w", err)
			}
		}
	}
	return nil
}

// AllreduceF64 reduces count float64s at va elementwise across all ranks
// with op; every rank ends with the result. Power-of-two rank counts use
// recursive doubling; others reduce to rank 0 then broadcast.
func (r *Rank) AllreduceF64(va vm.VA, count int, op ReduceOp) error {
	start := r.clock.Now()
	outer := r.enterMPI()
	defer func() { r.exitMPI("Allreduce", start, outer) }()
	p := r.Size()
	if p == 1 {
		return nil
	}
	bytes := 8 * count
	if p&(p-1) == 0 {
		tmp, err := r.scratch(uint64(bytes))
		if err != nil {
			return err
		}
		for mask, round := 1, 0; mask < p; mask, round = mask<<1, round+1 {
			peer := r.id ^ mask
			if _, err := r.Sendrecv(peer, tagAllreduce+round, va, bytes,
				peer, tagAllreduce+round, tmp, bytes); err != nil {
				return fmt.Errorf("mpi: allreduce round %d: %w", round, err)
			}
			if err := r.combineF64(va, tmp, count, op); err != nil {
				return err
			}
		}
		return nil
	}
	if err := r.reduceTreeF64(0, va, count, op); err != nil {
		return err
	}
	return r.Bcast(0, va, bytes)
}

// ReduceF64 reduces to root only (binomial tree).
func (r *Rank) ReduceF64(root int, va vm.VA, count int, op ReduceOp) error {
	start := r.clock.Now()
	outer := r.enterMPI()
	defer func() { r.exitMPI("Reduce", start, outer) }()
	return r.reduceTreeF64(root, va, count, op)
}

func (r *Rank) reduceTreeF64(root int, va vm.VA, count int, op ReduceOp) error {
	p := r.Size()
	if p == 1 {
		return nil
	}
	bytes := 8 * count
	tmp, err := r.scratch(uint64(bytes))
	if err != nil {
		return err
	}
	vrank := (r.id - root + p) % p
	mask := 1
	for mask < p {
		if vrank&mask != 0 {
			parent := ((vrank &^ mask) + root) % p
			if err := r.Send(parent, tagReduce+mask, va, bytes); err != nil {
				return fmt.Errorf("mpi: reduce send: %w", err)
			}
			return nil
		}
		if vrank|mask < p {
			child := ((vrank | mask) + root) % p
			if _, err := r.Recv(child, tagReduce+mask, tmp, bytes); err != nil {
				return fmt.Errorf("mpi: reduce recv: %w", err)
			}
			if err := r.combineF64(va, tmp, count, op); err != nil {
				return err
			}
		}
		mask <<= 1
	}
	return nil
}

// combineF64 applies va[i] = op(va[i], tmp[i]) including the CPU cost of
// streaming both arrays.
func (r *Rank) combineF64(va, tmp vm.VA, count int, op ReduceOp) error {
	a, err := r.ReadF64(va, count)
	if err != nil {
		return err
	}
	b, err := r.ReadF64(tmp, count)
	if err != nil {
		return err
	}
	for i := range a {
		a[i] = op(a[i], b[i])
	}
	if err := r.WriteF64(va, a); err != nil {
		return err
	}
	// Reduction arithmetic streams 3 arrays through the cache.
	r.clock.Advance(r.memcpyTicks(3 * 8 * count))
	return nil
}

// Alltoall exchanges fixed-size blocks: block i of the send buffer goes
// to rank i; block j of the receive buffer comes from rank j.
func (r *Rank) Alltoall(sendVA, recvVA vm.VA, block int) error {
	start := r.clock.Now()
	outer := r.enterMPI()
	defer func() { r.exitMPI("Alltoall", start, outer) }()
	p := r.Size()
	counts := make([]int, p)
	sd := make([]int, p)
	rd := make([]int, p)
	for i := 0; i < p; i++ {
		counts[i] = block
		sd[i] = i * block
		rd[i] = i * block
	}
	if err := r.alltoallv(sendVA, counts, sd, recvVA, counts, rd); err != nil {
		return err
	}
	r.node.AddColl(node.CollStats{Alltoalls: 1})
	return nil
}

// Alltoallv is the variable-count variant (NAS IS key exchange).
func (r *Rank) Alltoallv(sendVA vm.VA, sendCounts, sendDispls []int,
	recvVA vm.VA, recvCounts, recvDispls []int) error {
	start := r.clock.Now()
	outer := r.enterMPI()
	defer func() { r.exitMPI("Alltoallv", start, outer) }()
	if err := r.alltoallv(sendVA, sendCounts, sendDispls, recvVA, recvCounts, recvDispls); err != nil {
		return err
	}
	r.node.AddColl(node.CollStats{Alltoallvs: 1})
	return nil
}

func (r *Rank) alltoallv(sendVA vm.VA, sc, sd []int, recvVA vm.VA, rc, rd []int) error {
	p := r.Size()
	if len(sc) != p || len(sd) != p || len(rc) != p || len(rd) != p {
		return fmt.Errorf("mpi: alltoallv: count/displ arrays must have %d entries", p)
	}
	var cs node.CollStats
	// Local block: a memcpy.
	if n := min(sc[r.id], rc[r.id]); n > 0 {
		buf := make([]byte, n)
		if err := r.as.Read(sendVA+vm.VA(sd[r.id]), buf); err != nil {
			return err
		}
		if err := r.as.Write(recvVA+vm.VA(rd[r.id]), buf); err != nil {
			return err
		}
		r.clock.Advance(r.memcpyTicks(n))
		cs.LocalCopyBytes += int64(n)
	}
	// Pairwise exchange: step k talks to (id+k) and (id-k).
	for k := 1; k < p; k++ {
		dst := (r.id + k) % p
		src := (r.id - k + p) % p
		if _, err := r.Sendrecv(
			dst, tagAlltoall+k, sendVA+vm.VA(sd[dst]), sc[dst],
			src, tagAlltoall+k, recvVA+vm.VA(rd[src]), rc[src]); err != nil {
			return fmt.Errorf("mpi: alltoallv step %d: %w", k, err)
		}
		cs.PairwiseSteps++
		cs.BytesSent += int64(sc[dst])
		cs.BytesRecv += int64(rc[src])
	}
	r.node.AddColl(cs)
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
