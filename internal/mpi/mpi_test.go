package mpi

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"repro/internal/machine"
	"repro/internal/simtime"
	"repro/internal/vm"
)

func defaultCfg(ranks int) Config {
	return Config{
		Machine:   machine.Opteron(),
		Ranks:     ranks,
		Allocator: AllocHuge,
		LazyDereg: true,
		HugeATT:   true,
	}
}

func mustWorld(t testing.TB, cfg Config) *World {
	t.Helper()
	w, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// pingpong sends a payload of n bytes 0->1 and back, verifying content.
func pingpong(t *testing.T, cfg Config, n int) {
	t.Helper()
	w := mustWorld(t, cfg)
	want := make([]byte, n)
	for i := range want {
		want[i] = byte(i*7 + 3)
	}
	err := w.Run(func(r *Rank) error {
		va, err := r.Malloc(uint64(n) + 64)
		if err != nil {
			return err
		}
		if r.ID() == 0 {
			if err := r.WriteBytes(va, want); err != nil {
				return err
			}
			if err := r.Send(1, 1, va, n); err != nil {
				return err
			}
			got := make([]byte, n)
			if _, err := r.Recv(1, 2, va, n); err != nil {
				return err
			}
			if err := r.ReadBytes(va, got); err != nil {
				return err
			}
			if !bytes.Equal(got, want) {
				return fmt.Errorf("echo mismatch")
			}
		} else {
			if _, err := r.Recv(0, 1, va, n); err != nil {
				return err
			}
			got := make([]byte, n)
			if err := r.ReadBytes(va, got); err != nil {
				return err
			}
			if !bytes.Equal(got, want) {
				return fmt.Errorf("payload mismatch at receiver")
			}
			if err := r.Send(0, 2, va, n); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.MaxTime() <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestPingPongEager(t *testing.T)      { pingpong(t, defaultCfg(2), 1024) }
func TestPingPongMid(t *testing.T)        { pingpong(t, defaultCfg(2), 12<<10) }
func TestPingPongRendezvous(t *testing.T) { pingpong(t, defaultCfg(2), 256<<10) }
func TestPingPongZeroLen(t *testing.T)    { pingpong(t, defaultCfg(2), 0) }

func TestPingPongAllAllocators(t *testing.T) {
	for _, a := range []AllocatorKind{AllocLibc, AllocHuge, AllocMorecore} {
		t.Run(string(a), func(t *testing.T) {
			cfg := defaultCfg(2)
			cfg.Allocator = a
			pingpong(t, cfg, 100<<10)
		})
	}
}

func TestPingPongEagerDereg(t *testing.T) {
	cfg := defaultCfg(2)
	cfg.LazyDereg = false
	pingpong(t, cfg, 256<<10)
}

func TestHeadToHeadSendrecv(t *testing.T) {
	// Both ranks Sendrecv large (rendezvous) messages simultaneously —
	// the pattern that deadlocks naive blocking implementations.
	w := mustWorld(t, defaultCfg(2))
	const n = 512 << 10
	err := w.Run(func(r *Rank) error {
		sva, err := r.Malloc(n)
		if err != nil {
			return err
		}
		rva, err := r.Malloc(n)
		if err != nil {
			return err
		}
		fill := bytes.Repeat([]byte{byte(r.ID() + 1)}, n)
		if err := r.WriteBytes(sva, fill); err != nil {
			return err
		}
		peer := 1 - r.ID()
		if _, err := r.Sendrecv(peer, 9, sva, n, peer, 9, rva, n); err != nil {
			return err
		}
		got := make([]byte, n)
		if err := r.ReadBytes(rva, got); err != nil {
			return err
		}
		want := byte(peer + 1)
		for i, b := range got {
			if b != want {
				return fmt.Errorf("byte %d: got %d want %d", i, b, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMessageOrderingSameTag(t *testing.T) {
	w := mustWorld(t, defaultCfg(2))
	const k = 20
	err := w.Run(func(r *Rank) error {
		va, err := r.Malloc(4096)
		if err != nil {
			return err
		}
		if r.ID() == 0 {
			for i := 0; i < k; i++ {
				if err := r.WriteBytes(va, []byte{byte(i)}); err != nil {
					return err
				}
				if err := r.Send(1, 5, va, 1); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < k; i++ {
			if _, err := r.Recv(0, 5, va, 1); err != nil {
				return err
			}
			b := make([]byte, 1)
			if err := r.ReadBytes(va, b); err != nil {
				return err
			}
			if b[0] != byte(i) {
				return fmt.Errorf("message %d arrived out of order (got %d)", i, b[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	// Receiver asks for tag 2 first although tag 1 was sent first; the
	// unexpected queue must hold tag 1.
	w := mustWorld(t, defaultCfg(2))
	err := w.Run(func(r *Rank) error {
		va, err := r.Malloc(4096)
		if err != nil {
			return err
		}
		if r.ID() == 0 {
			_ = r.WriteBytes(va, []byte{11})
			if err := r.Send(1, 1, va, 1); err != nil {
				return err
			}
			_ = r.WriteBytes(va, []byte{22})
			return r.Send(1, 2, va, 1)
		}
		b := make([]byte, 1)
		if _, err := r.Recv(0, 2, va, 1); err != nil {
			return err
		}
		_ = r.ReadBytes(va, b)
		if b[0] != 22 {
			return fmt.Errorf("tag 2 payload wrong: %d", b[0])
		}
		if _, err := r.Recv(0, 1, va, 1); err != nil {
			return err
		}
		_ = r.ReadBytes(va, b)
		if b[0] != 11 {
			return fmt.Errorf("tag 1 payload wrong: %d", b[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestClockMonotonicAndCausal(t *testing.T) {
	// A receiver can never complete a receive before the sender started
	// sending it (causality across clocks).
	w := mustWorld(t, defaultCfg(2))
	err := w.Run(func(r *Rank) error {
		va, _ := r.Malloc(64 << 10)
		if r.ID() == 0 {
			r.Compute(1_000_000) // sender is busy first
			return r.Send(1, 1, va, 64<<10)
		}
		before := r.Now()
		if _, err := r.Recv(0, 1, va, 64<<10); err != nil {
			return err
		}
		if r.Now() < 1_000_000 {
			return fmt.Errorf("receive completed at %d, before sender even started", r.Now())
		}
		if r.Now() <= before {
			return fmt.Errorf("clock did not advance")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronises(t *testing.T) {
	for _, p := range []int{2, 3, 4, 8} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			w := mustWorld(t, defaultCfg(p))
			err := w.Run(func(r *Rank) error {
				// Stagger arrival times.
				r.Compute(simtime_Ticks(r.ID()) * 100_000)
				if err := r.Barrier(); err != nil {
					return err
				}
				if r.Now() < simtime_Ticks(p-1)*100_000 {
					return fmt.Errorf("rank %d left barrier at %d, before last arrival", r.ID(), r.Now())
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBcastAllRootsAllSizes(t *testing.T) {
	for _, p := range []int{2, 3, 5, 8} {
		w := mustWorld(t, defaultCfg(p))
		err := w.Run(func(r *Rank) error {
			va, _ := r.Malloc(64 << 10)
			for root := 0; root < p; root++ {
				if r.ID() == root {
					_ = r.WriteBytes(va, bytes.Repeat([]byte{byte(root + 1)}, 1000))
				}
				if err := r.Bcast(root, va, 1000); err != nil {
					return err
				}
				got := make([]byte, 1000)
				_ = r.ReadBytes(va, got)
				for _, b := range got {
					if b != byte(root+1) {
						return fmt.Errorf("rank %d: bcast from %d corrupted", r.ID(), root)
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestAllreduceSumAndMax(t *testing.T) {
	for _, p := range []int{2, 3, 4, 8} {
		w := mustWorld(t, defaultCfg(p))
		const count = 257
		err := w.Run(func(r *Rank) error {
			va, _ := r.Malloc(count * 8)
			xs := make([]float64, count)
			for i := range xs {
				xs[i] = float64(r.ID()+1) * float64(i+1)
			}
			if err := r.WriteF64(va, xs); err != nil {
				return err
			}
			if err := r.AllreduceF64(va, count, Sum); err != nil {
				return err
			}
			got, err := r.ReadF64(va, count)
			if err != nil {
				return err
			}
			sumRanks := float64(p*(p+1)) / 2
			for i := range got {
				want := sumRanks * float64(i+1)
				if math.Abs(got[i]-want) > 1e-9*math.Abs(want) {
					return fmt.Errorf("rank %d elem %d: got %g want %g", r.ID(), i, got[i], want)
				}
			}
			// Max reduction.
			for i := range xs {
				xs[i] = float64(r.ID())
			}
			if err := r.WriteF64(va, xs); err != nil {
				return err
			}
			if err := r.AllreduceF64(va, count, Max); err != nil {
				return err
			}
			got, _ = r.ReadF64(va, count)
			for i := range got {
				if got[i] != float64(p-1) {
					return fmt.Errorf("max elem %d: got %g want %d", i, got[i], p-1)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestReduceToRoot(t *testing.T) {
	w := mustWorld(t, defaultCfg(4))
	err := w.Run(func(r *Rank) error {
		va, _ := r.Malloc(80)
		xs := []float64{float64(r.ID() + 1)}
		if err := r.WriteF64(va, xs); err != nil {
			return err
		}
		if err := r.ReduceF64(2, va, 1, Sum); err != nil {
			return err
		}
		if r.ID() == 2 {
			got, _ := r.ReadF64(va, 1)
			if got[0] != 10 {
				return fmt.Errorf("reduce sum = %g, want 10", got[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallPermutation(t *testing.T) {
	for _, p := range []int{2, 4, 8} {
		w := mustWorld(t, defaultCfg(p))
		const block = 4096
		err := w.Run(func(r *Rank) error {
			sva, _ := r.Malloc(uint64(p * block))
			rva, _ := r.Malloc(uint64(p * block))
			for i := 0; i < p; i++ {
				pattern := bytes.Repeat([]byte{byte(r.ID()*16 + i)}, block)
				if err := r.WriteBytes(sva+vm.VA(i*block), pattern); err != nil {
					return err
				}
			}
			if err := r.Alltoall(sva, rva, block); err != nil {
				return err
			}
			for j := 0; j < p; j++ {
				got := make([]byte, block)
				_ = r.ReadBytes(rva+vm.VA(j*block), got)
				want := byte(j*16 + r.ID())
				for _, b := range got {
					if b != want {
						return fmt.Errorf("rank %d block %d: got %d want %d", r.ID(), j, b, want)
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestAlltoallvVariableCounts(t *testing.T) {
	const p = 4
	w := mustWorld(t, defaultCfg(p))
	err := w.Run(func(r *Rank) error {
		// Rank i sends (i+1)*(j+1)*100 bytes to rank j.
		sc := make([]int, p)
		sd := make([]int, p)
		rc := make([]int, p)
		rd := make([]int, p)
		stot, rtot := 0, 0
		for j := 0; j < p; j++ {
			sc[j] = (r.ID() + 1) * (j + 1) * 100
			sd[j] = stot
			stot += sc[j]
			rc[j] = (j + 1) * (r.ID() + 1) * 100
			rd[j] = rtot
			rtot += rc[j]
		}
		sva, _ := r.Malloc(uint64(stot))
		rva, _ := r.Malloc(uint64(rtot))
		for j := 0; j < p; j++ {
			if err := r.WriteBytes(sva+vm.VA(sd[j]), bytes.Repeat([]byte{byte(r.ID()*8 + j)}, sc[j])); err != nil {
				return err
			}
		}
		if err := r.Alltoallv(sva, sc, sd, rva, rc, rd); err != nil {
			return err
		}
		for j := 0; j < p; j++ {
			got := make([]byte, rc[j])
			_ = r.ReadBytes(rva+vm.VA(rd[j]), got)
			want := byte(j*8 + r.ID())
			for _, b := range got {
				if b != want {
					return fmt.Errorf("rank %d from %d corrupted", r.ID(), j)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLazyDeregSpeedsUpRepeatedSends(t *testing.T) {
	// Figure 5's mechanism at the MPI level: the second large send on the
	// same buffer is much cheaper with lazy deregistration on.
	timeFor := func(lazy bool) (first, second simtime_Ticks) {
		cfg := defaultCfg(2)
		cfg.Allocator = AllocLibc
		cfg.LazyDereg = lazy
		w := mustWorld(t, cfg)
		var f, s simtime_Ticks
		err := w.Run(func(r *Rank) error {
			const n = 1 << 20
			va, _ := r.Malloc(n)
			if r.ID() == 0 {
				t0 := r.Now()
				if err := r.Send(1, 1, va, n); err != nil {
					return err
				}
				t1 := r.Now()
				if err := r.Send(1, 2, va, n); err != nil {
					return err
				}
				f, s = t1-t0, r.Now()-t1
				return nil
			}
			if _, err := r.Recv(0, 1, va, n); err != nil {
				return err
			}
			_, err := r.Recv(0, 2, va, n)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return f, s
	}
	_, lazySecond := timeFor(true)
	_, eagerSecond := timeFor(false)
	if float64(lazySecond) > 0.9*float64(eagerSecond) {
		t.Fatalf("lazy second send %d not faster than eager %d", lazySecond, eagerSecond)
	}
}

func TestPinnedMemoryRemainsWithLazyDereg(t *testing.T) {
	// The drawback the paper highlights: "memory remains allocated to the
	// application during their whole runtime".
	cfg := defaultCfg(2)
	cfg.LazyDereg = true
	w := mustWorld(t, cfg)
	err := w.Run(func(r *Rank) error {
		const n = 1 << 20
		va, _ := r.Malloc(n)
		if r.ID() == 0 {
			return r.Send(1, 1, va, n)
		}
		_, err := r.Recv(0, 1, va, n)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if w.Rank(i).Cache().Stats().PinnedBytes == 0 {
			t.Fatalf("rank %d: lazy dereg should keep memory pinned", i)
		}
	}
}

func TestPackedVsGatheredEquivalence(t *testing.T) {
	for _, mode := range []string{"packed", "gathered"} {
		t.Run(mode, func(t *testing.T) {
			w := mustWorld(t, defaultCfg(2))
			const pieceLen, npieces = 96, 8
			err := w.Run(func(r *Rank) error {
				base, _ := r.Malloc(64 << 10)
				pieces := make([]Piece, npieces)
				for i := range pieces {
					pieces[i] = Piece{VA: base + vm.VA(i*1024), Len: pieceLen}
				}
				if r.ID() == 0 {
					for i := range pieces {
						_ = r.WriteBytes(pieces[i].VA, bytes.Repeat([]byte{byte(i + 1)}, pieceLen))
					}
					if mode == "packed" {
						return r.SendPacked(1, 3, pieces)
					}
					return r.SendGathered(1, 3, pieces)
				}
				if err := r.RecvUnpack(0, 3, pieces); err != nil {
					return err
				}
				for i := range pieces {
					got := make([]byte, pieceLen)
					_ = r.ReadBytes(pieces[i].VA, got)
					for _, b := range got {
						if b != byte(i+1) {
							return fmt.Errorf("piece %d corrupted", i)
						}
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestWorldValidation(t *testing.T) {
	if _, err := NewWorld(Config{Ranks: 2}); err == nil {
		t.Fatal("missing machine accepted")
	}
	if _, err := NewWorld(Config{Machine: machine.Opteron(), Ranks: 0}); err == nil {
		t.Fatal("zero ranks accepted")
	}
	if _, err := NewWorld(Config{Machine: machine.Opteron(), Ranks: 1, Allocator: "bogus"}); err == nil {
		t.Fatal("bogus allocator accepted")
	}
}

func TestProfileRecordsCalls(t *testing.T) {
	w := mustWorld(t, defaultCfg(2))
	err := w.Run(func(r *Rank) error {
		va, _ := r.Malloc(4096)
		r.Compute(1000)
		if r.ID() == 0 {
			return r.Send(1, 1, va, 128)
		}
		_, err := r.Recv(0, 1, va, 128)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	p := w.Profile()
	if p.CommTime() <= 0 {
		t.Fatal("no comm time recorded")
	}
	if p.ComputeTime() < 2000 {
		t.Fatalf("compute time %d, want >= 2000", p.ComputeTime())
	}
	found := false
	for _, cs := range p.Calls() {
		if cs.Name == "Send" && cs.Count == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("Send call not profiled")
	}
}

// simtime_Ticks is a local alias to keep test call sites short.
type simtime_Ticks = simtime.Ticks
