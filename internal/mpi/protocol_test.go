package mpi

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/machine"
	"repro/internal/simtime"
)

func TestReadRendezvousMovesBytes(t *testing.T) {
	cfg := defaultCfg(2)
	cfg.RendezvousProtocol = "read"
	pingpong(t, cfg, 512<<10)
}

func TestReadRendezvousHeadToHead(t *testing.T) {
	cfg := defaultCfg(2)
	cfg.RendezvousProtocol = "read"
	w := mustWorld(t, cfg)
	const n = 256 << 10
	err := w.Run(func(r *Rank) error {
		sva, _ := r.Malloc(n)
		rva, _ := r.Malloc(n)
		_ = r.WriteBytes(sva, bytes.Repeat([]byte{byte(r.ID() + 5)}, n))
		peer := 1 - r.ID()
		if _, err := r.Sendrecv(peer, 3, sva, n, peer, 3, rva, n); err != nil {
			return err
		}
		got := make([]byte, n)
		_ = r.ReadBytes(rva, got)
		for i, b := range got {
			if b != byte(peer+5) {
				return fmt.Errorf("byte %d corrupted", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRendezvousProtocolValidation(t *testing.T) {
	cfg := defaultCfg(2)
	cfg.RendezvousProtocol = "teleport"
	if _, err := NewWorld(cfg); err == nil {
		t.Fatal("bogus rendezvous protocol accepted")
	}
}

func TestReadVsWriteLatencyShape(t *testing.T) {
	// RDMA read pays an extra one-way wire latency for the request but
	// skips the CTS exchange; for a receiver that is already waiting the
	// two protocols should land within ~25% of each other, with read not
	// beating write by much (it cannot skip the data transfer).
	timeFor := func(proto string) simtime.Ticks {
		cfg := defaultCfg(2)
		cfg.RendezvousProtocol = proto
		w := mustWorld(t, cfg)
		var elapsed simtime.Ticks
		err := w.Run(func(r *Rank) error {
			const n = 1 << 20
			va, _ := r.Malloc(n)
			if r.ID() == 0 {
				return r.Send(1, 1, va, n)
			}
			t0 := r.Now()
			if _, err := r.Recv(0, 1, va, n); err != nil {
				return err
			}
			elapsed = r.Now() - t0
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	write, read := timeFor("write"), timeFor("read")
	ratio := float64(read) / float64(write)
	t.Logf("1MiB recv latency: write-rendezvous %v, read-rendezvous %v (%.2fx)", write, read, ratio)
	if ratio < 0.75 || ratio > 1.25 {
		t.Fatalf("protocols diverge too much: %.2fx", ratio)
	}
}

func TestEagerCreditsThrottleFloods(t *testing.T) {
	// With a tiny credit pool, a sender flooding eager messages must
	// block until the receiver drains — and its clock must reflect the
	// receiver's pace rather than racing ahead.
	cfg := defaultCfg(2)
	cfg.EagerCredits = 2
	cfg.ChannelDepth = 8192
	w := mustWorld(t, cfg)
	const msgs = 40
	err := w.Run(func(r *Rank) error {
		va, _ := r.Malloc(8 << 10)
		if r.ID() == 0 {
			for i := 0; i < msgs; i++ {
				if err := r.Send(1, 5, va, 4<<10); err != nil {
					return err
				}
			}
			return nil
		}
		// Slow receiver: compute between receives.
		for i := 0; i < msgs; i++ {
			r.Compute(100_000)
			if _, err := r.Recv(0, 5, va, 4<<10); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The sender cannot have finished much before the receiver's pace:
	// with 2 credits it is at most 2 messages ahead.
	sender, receiver := w.Rank(0).Now(), w.Rank(1).Now()
	if float64(sender) < 0.8*float64(receiver) {
		t.Fatalf("sender finished at %d, receiver at %d: flow control not engaged", sender, receiver)
	}
}

func TestEagerCreditsDefaultDoesNotThrottlePingPong(t *testing.T) {
	cfg := defaultCfg(2) // default 64 credits
	w := mustWorld(t, cfg)
	err := w.Run(func(r *Rank) error {
		va, _ := r.Malloc(4 << 10)
		for i := 0; i < 10; i++ {
			if r.ID() == 0 {
				if err := r.Send(1, i, va, 1024); err != nil {
					return err
				}
				if _, err := r.Recv(1, i, va, 1024); err != nil {
					return err
				}
			} else {
				if _, err := r.Recv(0, i, va, 1024); err != nil {
					return err
				}
				if err := r.Send(0, i, va, 1024); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNASKernelsUnderReadRendezvous(t *testing.T) {
	// The whole application stack must work under the alternative
	// protocol too (ablation sanity).
	cfg := Config{
		Machine: machine.Opteron(), Ranks: 4,
		Allocator: AllocHuge, LazyDereg: true, HugeATT: true,
		RendezvousProtocol: "read",
	}
	w := mustWorld(t, cfg)
	err := w.Run(func(r *Rank) error {
		const n = 128 << 10
		sva, _ := r.Malloc(n)
		rva, _ := r.Malloc(n)
		right := (r.ID() + 1) % r.Size()
		left := (r.ID() - 1 + r.Size()) % r.Size()
		for i := 0; i < 5; i++ {
			if _, err := r.Sendrecv(right, i, sva, n, left, i, rva, n); err != nil {
				return err
			}
		}
		return r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}
