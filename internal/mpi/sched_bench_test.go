package mpi

import (
	"testing"

	"repro/internal/machine"
)

// BenchmarkSendrecv8 drives one full ring exchange (every rank Sendrecvs
// its right neighbour) of 64 KiB rendezvous messages across 8 ranks per
// iteration — the shape of the IMB SendRecv inner loop. It measures the
// per-exchange overhead of the execution engine: under the old
// goroutine-pair design each exchange cost a forked OS goroutine plus
// three gate handshakes per rank; under the event scheduler it is a
// deterministic sequence of task switches.
func BenchmarkSendrecv8(b *testing.B) {
	benchRing(b, 8, 64<<10)
}

// BenchmarkWorldRun1024 builds a 1024-rank world and runs one eager ring
// exchange — the world-construction plus event-dispatch cost that
// dominates at scale. Pre-refactor this allocated over a million peer
// channels (with 64 prefilled credit tokens each) before the first
// message moved.
func BenchmarkWorldRun1024(b *testing.B) {
	benchRing(b, 1024, 4<<10)
}

func benchRing(b *testing.B, ranks, bytes int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w, err := NewWorld(Config{
			Machine: machine.Opteron(), Ranks: ranks,
			Allocator: AllocHuge, LazyDereg: true, HugeATT: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		err = w.Run(func(r *Rank) error {
			sva, err := r.Malloc(uint64(bytes))
			if err != nil {
				return err
			}
			rva, err := r.Malloc(uint64(bytes))
			if err != nil {
				return err
			}
			right := (r.ID() + 1) % r.Size()
			left := (r.ID() - 1 + r.Size()) % r.Size()
			for it := 0; it < 4; it++ {
				if _, err := r.Sendrecv(right, it, sva, bytes, left, it, rva, bytes); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
