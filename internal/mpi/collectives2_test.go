package mpi

import (
	"bytes"
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/vm"
)

func TestAllgatherRing(t *testing.T) {
	for _, p := range []int{2, 3, 5, 8} {
		for _, block := range []int{512, 64 << 10} { // eager and rendezvous
			w := mustWorld(t, defaultCfg(p))
			err := w.Run(func(r *Rank) error {
				sva, _ := r.Malloc(uint64(block))
				rva, _ := r.Malloc(uint64(p * block))
				_ = r.WriteBytes(sva, bytes.Repeat([]byte{byte(r.ID() + 1)}, block))
				if err := r.Allgather(sva, rva, block); err != nil {
					return err
				}
				for src := 0; src < p; src++ {
					got := make([]byte, block)
					_ = r.ReadBytes(rva+VAof(src*block), got)
					for _, b := range got {
						if b != byte(src+1) {
							return fmt.Errorf("rank %d: block %d corrupted (%d)", r.ID(), src, b)
						}
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d block=%d: %v", p, block, err)
			}
		}
	}
}

// VAof converts a byte offset for test readability.
func VAof(off int) vm.VA { return vm.VA(off) }

func TestGatherScatterRoundTrip(t *testing.T) {
	const p, block = 4, 4096
	w := mustWorld(t, defaultCfg(p))
	err := w.Run(func(r *Rank) error {
		const root = 2
		sva, _ := r.Malloc(uint64(p * block))
		rva, _ := r.Malloc(uint64(p * block))
		// Every rank contributes a signed block.
		_ = r.WriteBytes(sva, bytes.Repeat([]byte{byte(16 + r.ID())}, block))
		if err := r.Gather(root, sva, rva, block); err != nil {
			return err
		}
		if r.ID() == root {
			for src := 0; src < p; src++ {
				got := make([]byte, block)
				_ = r.ReadBytes(rva+VAof(src*block), got)
				for _, b := range got {
					if b != byte(16+src) {
						return fmt.Errorf("gather: block %d corrupted", src)
					}
				}
			}
		}
		if err := r.Barrier(); err != nil {
			return err
		}
		// Scatter back from the root: every rank must recover its block.
		out, _ := r.Malloc(uint64(block))
		if err := r.Scatter(root, rva, out, block); err != nil {
			return err
		}
		got := make([]byte, block)
		_ = r.ReadBytes(out, got)
		for _, b := range got {
			if b != byte(16+r.ID()) {
				return fmt.Errorf("scatter: rank %d got %d", r.ID(), b)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScanPrefixSums(t *testing.T) {
	const p, count = 6, 33
	w := mustWorld(t, defaultCfg(p))
	err := w.Run(func(r *Rank) error {
		va, _ := r.Malloc(count * 8)
		xs := make([]float64, count)
		for i := range xs {
			xs[i] = float64((r.ID() + 1) * (i + 1))
		}
		if err := r.WriteF64(va, xs); err != nil {
			return err
		}
		if err := r.ScanF64(va, count, Sum); err != nil {
			return err
		}
		got, _ := r.ReadF64(va, count)
		// Inclusive prefix over ranks 0..id of (rank+1)*(i+1).
		pref := float64((r.ID() + 1) * (r.ID() + 2) / 2)
		for i := range got {
			want := pref * float64(i+1)
			if math.Abs(got[i]-want) > 1e-9 {
				return fmt.Errorf("rank %d elem %d: got %g want %g", r.ID(), i, got[i], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: Allgather equals Gather-at-root + Bcast for random block
// payloads (reference-implementation equivalence).
func TestQuickAllgatherEquivalence(t *testing.T) {
	const p = 4
	f := func(seed uint8, blockRaw uint16) bool {
		block := int(blockRaw)%2048 + 8
		w := mustWorld(t, defaultCfg(p))
		ok := true
		err := w.Run(func(r *Rank) error {
			sva, _ := r.Malloc(uint64(block))
			agVA, _ := r.Malloc(uint64(p * block))
			refVA, _ := r.Malloc(uint64(p * block))
			payload := make([]byte, block)
			for i := range payload {
				payload[i] = seed + byte(r.ID()*31+i)
			}
			_ = r.WriteBytes(sva, payload)
			if err := r.Allgather(sva, agVA, block); err != nil {
				return err
			}
			if err := r.Gather(0, sva, refVA, block); err != nil {
				return err
			}
			if err := r.Bcast(0, refVA, p*block); err != nil {
				return err
			}
			a := make([]byte, p*block)
			b := make([]byte, p*block)
			_ = r.ReadBytes(agVA, a)
			_ = r.ReadBytes(refVA, b)
			if !bytes.Equal(a, b) {
				ok = false
			}
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
