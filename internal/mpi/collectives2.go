package mpi

import (
	"fmt"

	"repro/internal/vm"
)

// Additional collective tag space.
const (
	tagAllgather = 6 << 20
	tagGather    = 7 << 20
	tagScatter   = 8 << 20
	tagScan      = 9 << 20
)

// Allgather collects every rank's block of `block` bytes at sendVA into
// recvVA (p blocks, ordered by rank) on every rank, using the ring
// algorithm (bandwidth-optimal for large blocks, the MVAPICH2 default).
func (r *Rank) Allgather(sendVA, recvVA vm.VA, block int) error {
	start := r.clock.Now()
	outer := r.enterMPI()
	defer func() { r.exitMPI("Allgather", start, outer) }()
	p := r.Size()
	// Copy the local block into place.
	if block > 0 {
		buf := make([]byte, block)
		if err := r.as.Read(sendVA, buf); err != nil {
			return err
		}
		if err := r.as.Write(recvVA+vm.VA(r.id*block), buf); err != nil {
			return err
		}
		r.clock.Advance(r.memcpyTicks(block))
	}
	if p == 1 {
		return nil
	}
	right := (r.id + 1) % p
	left := (r.id - 1 + p) % p
	sendSeg := r.id
	for step := 0; step < p-1; step++ {
		recvSeg := (sendSeg - 1 + p) % p
		if _, err := r.Sendrecv(
			right, tagAllgather+step, recvVA+vm.VA(sendSeg*block), block,
			left, tagAllgather+step, recvVA+vm.VA(recvSeg*block), block); err != nil {
			return fmt.Errorf("mpi: allgather step %d: %w", step, err)
		}
		sendSeg = recvSeg
	}
	return nil
}

// Gather collects every rank's block at the root: block i of the root's
// receive buffer comes from rank i. Non-roots pass recvVA=0.
func (r *Rank) Gather(root int, sendVA, recvVA vm.VA, block int) error {
	start := r.clock.Now()
	outer := r.enterMPI()
	defer func() { r.exitMPI("Gather", start, outer) }()
	p := r.Size()
	if r.id != root {
		return r.sendOn(r.task, &r.clock, root, tagGather+r.id, sendVA, block, nil, nil, nil)
	}
	// Root: own block is a copy; others arrive tagged by source.
	if block > 0 {
		buf := make([]byte, block)
		if err := r.as.Read(sendVA, buf); err != nil {
			return err
		}
		if err := r.as.Write(recvVA+vm.VA(r.id*block), buf); err != nil {
			return err
		}
		r.clock.Advance(r.memcpyTicks(block))
	}
	for src := 0; src < p; src++ {
		if src == root {
			continue
		}
		if _, err := r.recvOn(r.task, &r.clock, src, tagGather+src, recvVA+vm.VA(src*block), block, nil, nil); err != nil {
			return fmt.Errorf("mpi: gather from %d: %w", src, err)
		}
	}
	return nil
}

// Scatter distributes block i of the root's send buffer to rank i.
// Non-roots pass sendVA=0.
func (r *Rank) Scatter(root int, sendVA, recvVA vm.VA, block int) error {
	start := r.clock.Now()
	outer := r.enterMPI()
	defer func() { r.exitMPI("Scatter", start, outer) }()
	p := r.Size()
	if r.id != root {
		_, err := r.recvOn(r.task, &r.clock, root, tagScatter+r.id, recvVA, block, nil, nil)
		return err
	}
	for dst := 0; dst < p; dst++ {
		if dst == root {
			continue
		}
		if err := r.sendOn(r.task, &r.clock, dst, tagScatter+dst, sendVA+vm.VA(dst*block), block, nil, nil, nil); err != nil {
			return fmt.Errorf("mpi: scatter to %d: %w", dst, err)
		}
	}
	if block > 0 {
		buf := make([]byte, block)
		if err := r.as.Read(sendVA+vm.VA(root*block), buf); err != nil {
			return err
		}
		if err := r.as.Write(recvVA, buf); err != nil {
			return err
		}
		r.clock.Advance(r.memcpyTicks(block))
	}
	return nil
}

// ScanF64 computes the inclusive prefix reduction: rank i ends with
// op(x_0, ..., x_i) elementwise over count float64s at va (linear chain,
// as in small-cluster MPICH).
func (r *Rank) ScanF64(va vm.VA, count int, op ReduceOp) error {
	start := r.clock.Now()
	outer := r.enterMPI()
	defer func() { r.exitMPI("Scan", start, outer) }()
	bytes := 8 * count
	if r.id > 0 {
		tmp, err := r.scratch(uint64(bytes))
		if err != nil {
			return err
		}
		if _, err := r.recvOn(r.task, &r.clock, r.id-1, tagScan, tmp, bytes, nil, nil); err != nil {
			return fmt.Errorf("mpi: scan recv: %w", err)
		}
		// Combine with predecessor prefix: va = op(prefix, va).
		if err := r.combineF64(va, tmp, count, op); err != nil {
			return err
		}
	}
	if r.id < r.Size()-1 {
		if err := r.sendOn(r.task, &r.clock, r.id+1, tagScan, va, bytes, nil, nil, nil); err != nil {
			return fmt.Errorf("mpi: scan send: %w", err)
		}
	}
	return nil
}
