package mpi

import (
	"errors"
	"fmt"

	"repro/internal/faults"
	"repro/internal/hca"
	"repro/internal/sched"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/vm"
)

// ErrWRFailed reports a work request whose completion kept erroring past
// the repost limit — the injected-fault equivalent of a fatal IBV_WC
// status.
var ErrWRFailed = errors.New("mpi: work request failed after retries")

// Transient completion-error recovery: a failed completion is reposted
// with exponential backoff, all in virtual time, bounded so a hostile
// fault period cannot hang a rank.
const (
	wrRetryLimit  = 8
	wrBackoffBase = simtime.Ticks(400)
)

// pollCQ drains one completion, injecting transient completion errors
// from the rank's fault schedule. Each error costs a backoff
// (wrBackoffBase << attempt) plus a re-poll; recovery is deterministic
// because the injector decides per (stream, event index), never by wall
// clock or goroutine timing. A nil injector reduces to the plain
// PollCQ cost advance.
func (r *Rank) pollCQ(clk *simtime.Clock, stream faults.WRStream) error {
	clk.Advance(r.ctx.PollCQT(r.tctx(clk)))
	if !r.inj.WRError(stream) {
		return nil
	}
	for attempt := 0; ; attempt++ {
		if attempt == wrRetryLimit {
			return fmt.Errorf("mpi: rank %d: %w", r.id, ErrWRFailed)
		}
		r.inj.RecordWRRetry()
		backoff := wrBackoffBase << uint(attempt)
		if tc := r.tctx(clk); tc.Enabled() {
			tc.Span(trace.LMPI, "wr.retry", backoff, trace.I64("attempt", int64(attempt)))
		}
		clk.Advance(backoff)
		clk.Advance(r.ctx.PollCQT(r.tctx(clk)))
		if !r.inj.WRError(stream) {
			return nil
		}
	}
}

// message kinds.
const (
	kindEager = iota
	kindRTS
)

// message is one wire-level unit between two ranks. Eager messages carry
// their payload; rendezvous starts with an RTS carrying reply queues.
type message struct {
	kind int
	src  int
	tag  int

	// flow is the trace arrow id linking the send post to the receive
	// (0 when tracing is disabled).
	flow uint64

	// eager
	data   []byte
	arrive simtime.Ticks // arrival instant at the receiver's NIC

	// rendezvous
	size int
	cts  *sched.Queue[ctsMsg]
	fin  *sched.Queue[finMsg]

	// read-rendezvous (RGET): the sender's exposed region plus a queue
	// on which the receiver announces read completion.
	srcRKey uint32
	srcVA   vm.VA
	done    *sched.Queue[simtime.Ticks]
	srcHW   *hca.HCA
}

// ctsMsg is the receiver's clear-to-send: target rkey/address plus the
// receiver clock at which it was issued.
type ctsMsg struct {
	rkey uint32
	va   vm.VA
	t    simtime.Ticks
}

// finMsg announces the RDMA write: the payload plus the timing components
// the receiver needs to finish the pipeline model.
type finMsg struct {
	data      []byte
	start     simtime.Ticks // sender clock when the RDMA WR was posted
	gather    simtime.Ticks // sender-side DMA gather cost
	serialize simtime.Ticks // wire serialisation cost
}

// eagerPipelineTicks is the fixed software overhead of the eager path
// (header build, channel progress) beyond copies and HCA costs.
const eagerPipelineTicks = simtime.Ticks(220)

// Send transmits n bytes starting at va to rank dst with a tag. Protocol
// selection follows MVAPICH2: eager/copy up to the RDMA limit, RDMA-write
// rendezvous above it.
func (r *Rank) Send(dst, tag int, va vm.VA, n int) error {
	start := r.clock.Now()
	outer := r.enterMPI()
	err := r.sendOn(r.task, &r.clock, dst, tag, va, n, nil, nil, nil)
	r.exitMPI("Send", start, outer)
	return err
}

// sendOn is Send against an explicit task and clock (Sendrecv runs its
// send half as a forked sub-task on a forked clock). The three gates
// order this half against a concurrent recv half on the rank's shared
// structures; they are nil for ungated plain sends:
//   - started opens once this half is past its registration point (or
//     will never register), releasing the recv half to start;
//   - dma opens once this half's DMA gather is done (or will never
//     happen), ordering it before the recv half's scatter on the shared
//     adapter;
//   - rel holds this half's cache release until the recv half has
//     finished with the cache (see Sendrecv).
func (r *Rank) sendOn(t *sched.Task, clk *simtime.Clock, dst, tag int, va vm.VA, n int, started, dma, rel *sched.Gate) error {
	defer started.Open() // never leave a gated recv half waiting
	defer dma.Open()
	if err := r.checkPeer(dst); err != nil {
		return err
	}
	if n < 0 {
		return fmt.Errorf("mpi: negative send length %d", n)
	}
	if n > r.world.cfg.RdmaLimit {
		if r.world.cfg.RendezvousProtocol == "read" {
			return r.sendRendezvousRead(t, clk, dst, tag, va, n, started, dma, rel)
		}
		return r.sendRendezvous(t, clk, dst, tag, va, n, started, dma, rel)
	}
	started.Open() // eager path never touches the registration cache
	return r.sendEager(t, clk, dst, tag, va, n)
}

// sendEager copies the payload through the preregistered bounce path and
// returns as soon as the local work is done (true eager semantics).
func (r *Rank) sendEager(t *sched.Task, clk *simtime.Clock, dst, tag int, va vm.VA, n int) error {
	// Flow control: consume one eager buffer credit for this peer; if the
	// receiver has not drained its bounce buffers we block here, and our
	// clock advances to the instant the credit was freed.
	waitStart := clk.Now()
	freed, ok := r.creditQ(dst).Pop(t)
	if !ok {
		return fmt.Errorf("mpi: rank %d awaiting eager credit for %d: %w", r.id, dst, ErrAborted)
	}
	clk.AdvanceTo(freed)
	if tc := r.tctx(clk); tc.Enabled() && clk.Now() > waitStart {
		tc.SpanAt(trace.LMPI, "credit.wait", waitStart, clk.Now()-waitStart)
	}
	var data []byte
	if n > 0 {
		data = make([]byte, n)
		if err := r.as.Read(va, data); err != nil {
			return err
		}
	}
	// CPU copy into the registered bounce buffer, then post + doorbell.
	copyCost := r.memcpyTicks(n) + eagerPipelineTicks
	if tc := r.tctx(clk); tc.Enabled() {
		tc.Span(trace.LMPI, "eager.copy", copyCost, trace.I64("bytes", int64(n)))
	}
	clk.Advance(copyCost)
	clk.Advance(r.ctx.PostSendT(r.tctx(clk), make([]hca.SGE, 1)))
	// The adapter gathers from the hot bounce buffer and serialises.
	arrive := clk.Now() + r.ctx.HW.WireCost(n)
	var flowID uint64
	if r.tr.Enabled() {
		flowID = r.nextFlow(dst)
		r.tctx(clk).FlowBegin(flowID)
	}
	// Local completion (inline/bounce: immediate).
	if err := r.pollCQ(clk, faults.StreamWRSend); err != nil {
		return err
	}
	if !r.world.ranks[dst].inboxQ(r.id).Push(t, &message{
		kind: kindEager, src: r.id, tag: tag, data: data, arrive: arrive, flow: flowID,
	}) {
		return fmt.Errorf("mpi: rank %d sending eager to %d: %w", r.id, dst, ErrAborted)
	}
	return nil
}

// sendRendezvousRead runs the receiver-driven RGET protocol: the sender
// exposes its registered buffer in the RTS; the receiver issues an RDMA
// read and reports completion. One control hop shorter for the receiver
// than write-rendezvous, one wire round trip longer for the data.
func (r *Rank) sendRendezvousRead(t *sched.Task, clk *simtime.Clock, dst, tag int, va vm.VA, n int, started, dma, rel *sched.Gate) error {
	mr, cost, err := r.cache.AcquireT(r.tctx(clk), va, uint64(n))
	started.Open()
	// The exposed buffer is read by the receiver's RDMA engine; this
	// half performs no local DMA, so the recv half need not wait.
	dma.Open()
	if err != nil {
		return fmt.Errorf("mpi: read-rendezvous register: %w", err)
	}
	clk.Advance(cost)
	m := &message{
		kind: kindRTS, src: r.id, tag: tag, size: n,
		srcRKey: mr.RKey, srcVA: va,
		done:  sched.NewQueue[simtime.Ticks](r.world.sched, "rget.done", 1),
		srcHW: r.ctx.HW,
	}
	clk.Advance(r.ctx.PostSendT(r.tctx(clk), make([]hca.SGE, 1)))
	m.arrive = clk.Now() + r.ctrlWire()
	if r.tr.Enabled() {
		m.flow = r.nextFlow(dst)
		r.tctx(clk).FlowBegin(m.flow)
	}
	if !r.world.ranks[dst].inboxQ(r.id).Push(t, m) {
		return fmt.Errorf("mpi: rank %d sending RTS to %d: %w", r.id, dst, ErrAborted)
	}

	waitStart := clk.Now()
	done, ok := m.done.Pop(t)
	if !ok {
		return fmt.Errorf("mpi: rank %d awaiting RDMA-read completion from %d: %w", r.id, dst, ErrAborted)
	}
	// The FIN arrives one control hop after the receiver finished.
	clk.AdvanceTo(done + r.ctrlWire())
	if tc := r.tctx(clk); tc.Enabled() && clk.Now() > waitStart {
		tc.SpanAt(trace.LMPI, "read.fin.wait", waitStart, clk.Now()-waitStart)
	}
	if err := r.pollCQ(clk, faults.StreamWRSend); err != nil {
		return err
	}
	rel.Wait(t) // the recv half finishes with the cache first
	relCost, err := r.cache.ReleaseT(r.tctx(clk), mr)
	if err != nil {
		return err
	}
	clk.Advance(relCost)
	return nil
}

// sendRendezvous runs the registration + RDMA-write protocol.
func (r *Rank) sendRendezvous(t *sched.Task, clk *simtime.Clock, dst, tag int, va vm.VA, n int, started, dma, rel *sched.Gate) error {
	mr, cost, err := r.cache.AcquireT(r.tctx(clk), va, uint64(n))
	started.Open()
	if err != nil {
		return fmt.Errorf("mpi: rendezvous register: %w", err)
	}
	clk.Advance(cost)

	m := &message{
		kind: kindRTS, src: r.id, tag: tag, size: n,
		cts: sched.NewQueue[ctsMsg](r.world.sched, "cts", 1),
		fin: sched.NewQueue[finMsg](r.world.sched, "fin", 1),
	}
	clk.Advance(r.ctx.PostSendT(r.tctx(clk), make([]hca.SGE, 1)))
	m.arrive = clk.Now() + r.ctrlWire()
	if r.tr.Enabled() {
		m.flow = r.nextFlow(dst)
		r.tctx(clk).FlowBegin(m.flow)
	}
	if !r.world.ranks[dst].inboxQ(r.id).Push(t, m) {
		return fmt.Errorf("mpi: rank %d sending RTS to %d: %w", r.id, dst, ErrAborted)
	}

	waitStart := clk.Now()
	cts, ok := m.cts.Pop(t)
	if !ok {
		return fmt.Errorf("mpi: rank %d awaiting CTS from %d: %w", r.id, dst, ErrAborted)
	}
	clk.AdvanceTo(cts.t + r.ctrlWire())
	if tc := r.tctx(clk); tc.Enabled() && clk.Now() > waitStart {
		tc.SpanAt(trace.LMPI, "cts.wait", waitStart, clk.Now()-waitStart)
	}
	// CTS completion.
	if err := r.pollCQ(clk, faults.StreamWRSend); err != nil {
		return err
	}

	// Post the RDMA write; the adapter gathers the user buffer (real
	// bytes) while the wire serialises — the two stages pipeline. The
	// gather is drawn on the adapter's TX track, where it runs.
	var tcg trace.Ctx
	if r.tr.Enabled() {
		tcg = r.tr.At(trace.TrackHCATx, clk.Now())
	}
	data, gather, err := r.ctx.HW.GatherT(tcg, []hca.SGE{{Addr: va, Length: uint32(n), LKey: mr.LKey}})
	dma.Open() // gather done; the recv half may now drive the adapter
	if err != nil {
		return fmt.Errorf("mpi: rendezvous gather: %w", err)
	}
	clk.Advance(r.ctx.PostSendT(r.tctx(clk), make([]hca.SGE, 1)))
	start := clk.Now()
	serialize := simtime.BandwidthTicks(int64(n), r.world.cfg.Machine.HCA.WireBandwidthMBs)
	m.fin.Push(t, finMsg{data: data, start: start, gather: gather, serialize: serialize})

	// Local completion: RC ack after remote placement of the last packet.
	wire := r.world.cfg.Machine.HCA.WireLatency
	clk.AdvanceTo(start + wire + simtime.Max(gather, serialize) + wire)
	if tc := r.tctx(clk); tc.Enabled() && clk.Now() > start {
		tc.SpanAt(trace.LMPI, "rdma.ack.wait", start, clk.Now()-start)
	}
	if err := r.pollCQ(clk, faults.StreamWRSend); err != nil {
		return err
	}

	rel.Wait(t) // the recv half finishes with the cache first
	relCost, err := r.cache.ReleaseT(r.tctx(clk), mr)
	if err != nil {
		return err
	}
	clk.Advance(relCost)
	// The CTS target is unused on the send side beyond addressing; the
	// receiver already validated it. Keep the variable meaningful:
	_ = cts.rkey
	return nil
}

// Recv receives up to cap bytes into va from rank src with a tag,
// returning the actual message size.
func (r *Rank) Recv(src, tag int, va vm.VA, capacity int) (int, error) {
	start := r.clock.Now()
	outer := r.enterMPI()
	n, err := r.recvOn(r.task, &r.clock, src, tag, va, capacity, nil, nil)
	r.exitMPI("Recv", start, outer)
	return n, err
}

// recvOn matches and completes one incoming message. It must run on the
// rank's main task (it owns the pending queues). rel is opened when
// this half is completely done with the registration cache, releasing a
// gated send half; opening happens on every exit path so an early error
// cannot strand the sender.
func (r *Rank) recvOn(t *sched.Task, clk *simtime.Clock, src, tag int, va vm.VA, capacity int, dma, rel *sched.Gate) (int, error) {
	defer rel.Open()
	if err := r.checkPeer(src); err != nil {
		return 0, err
	}
	waitStart := clk.Now()
	m := r.matchRecv(t, src, tag)
	if m == nil {
		return 0, fmt.Errorf("mpi: rank %d receiving from %d: %w", r.id, src, ErrAborted)
	}
	switch m.kind {
	case kindEager:
		n := len(m.data)
		if n > capacity {
			return 0, fmt.Errorf("mpi: eager truncation: got %d bytes, capacity %d", n, capacity)
		}
		clk.AdvanceTo(m.arrive)
		if tc := r.tctx(clk); tc.Enabled() {
			if clk.Now() > waitStart {
				tc.SpanAt(trace.LMPI, "recv.wait", waitStart, clk.Now()-waitStart)
			}
			if m.flow != 0 {
				tc.FlowEnd(m.flow)
			}
		}
		if err := r.pollCQ(clk, faults.StreamWRRecv); err != nil {
			return 0, err
		}
		if n > 0 {
			copyCost := r.memcpyTicks(n) + eagerPipelineTicks
			if tc := r.tctx(clk); tc.Enabled() {
				tc.Span(trace.LMPI, "eager.copy", copyCost, trace.I64("bytes", int64(n)))
			}
			clk.Advance(copyCost)
			if err := r.as.Write(va, m.data); err != nil {
				return 0, err
			}
		}
		// Return the eager buffer credit to the sender, stamped with the
		// time the bounce buffer became free again. A full pool (e.g.
		// duplicated teardown) drops the token.
		r.world.ranks[src].creditQ(r.id).TryPush(clk.Now())
		return n, nil

	case kindRTS:
		n := m.size
		if n > capacity {
			return 0, fmt.Errorf("mpi: rendezvous truncation: got %d bytes, capacity %d", n, capacity)
		}
		clk.AdvanceTo(m.arrive)
		if tc := r.tctx(clk); tc.Enabled() {
			if clk.Now() > waitStart {
				tc.SpanAt(trace.LMPI, "recv.wait", waitStart, clk.Now()-waitStart)
			}
			if m.flow != 0 {
				tc.FlowEnd(m.flow)
			}
		}
		// RTS completion.
		if err := r.pollCQ(clk, faults.StreamWRRecv); err != nil {
			return 0, err
		}
		if m.done != nil {
			return r.recvRendezvousRead(t, clk, m, va, dma)
		}
		mr, cost, err := r.cache.AcquireT(r.tctx(clk), va, uint64(n))
		if err != nil {
			return 0, fmt.Errorf("mpi: rendezvous recv register: %w", err)
		}
		clk.Advance(cost)
		clk.Advance(r.ctx.PostSendT(r.tctx(clk), make([]hca.SGE, 1))) // CTS post
		m.cts.Push(t, ctsMsg{rkey: mr.RKey, va: va, t: clk.Now()})

		rdmaStart := clk.Now()
		fin, ok := m.fin.Pop(t)
		if !ok {
			return 0, fmt.Errorf("mpi: rank %d awaiting data from %d: %w", r.id, src, ErrAborted)
		}
		dma.Wait(t) // the send half's gather drives the adapter first
		var tcs trace.Ctx
		if r.tr.Enabled() {
			tcs = r.tr.At(trace.TrackHCARx, clk.Now())
		}
		scatter, err := r.ctx.HW.ScatterRDMAT(tcs, mr.RKey, va, fin.data)
		if err != nil {
			return 0, fmt.Errorf("mpi: rendezvous scatter: %w", err)
		}
		wire := r.world.cfg.Machine.HCA.WireLatency
		done := fin.start + wire + simtime.Max(simtime.Max(fin.gather, fin.serialize), scatter)
		clk.AdvanceTo(done)
		if tc := r.tctx(clk); tc.Enabled() && clk.Now() > rdmaStart {
			tc.SpanAt(trace.LMPI, "rdma.wait", rdmaStart, clk.Now()-rdmaStart)
		}
		// FIN completion.
		if err := r.pollCQ(clk, faults.StreamWRRecv); err != nil {
			return 0, err
		}
		relCost, err := r.cache.ReleaseT(r.tctx(clk), mr)
		if err != nil {
			return 0, err
		}
		clk.Advance(relCost)
		return n, nil
	}
	return 0, fmt.Errorf("mpi: unknown message kind %d", m.kind)
}

// recvRendezvousRead completes a read-rendezvous: register the local
// buffer, RDMA-read from the sender's exposed region, notify the sender.
func (r *Rank) recvRendezvousRead(t *sched.Task, clk *simtime.Clock, m *message, va vm.VA, dma *sched.Gate) (int, error) {
	n := m.size
	mr, cost, err := r.cache.AcquireT(r.tctx(clk), va, uint64(n))
	if err != nil {
		return 0, fmt.Errorf("mpi: read-rendezvous recv register: %w", err)
	}
	clk.Advance(cost)
	clk.Advance(r.ctx.PostSendT(r.tctx(clk), make([]hca.SGE, 1))) // RDMA READ WR

	rdmaStart := clk.Now()
	// The read request crosses the wire, the sender's adapter gathers,
	// the response streams back, our adapter scatters. Data and request
	// both traverse the link: one extra one-way latency vs RDMA write.
	// The receiver drives the read, so the remote gather is drawn on the
	// receiver's TX track — a documented simplification (the arrow in
	// the trace still points at the data's true origin via the flow).
	var tcg trace.Ctx
	if r.tr.Enabled() {
		tcg = r.tr.At(trace.TrackHCATx, clk.Now())
	}
	data, gather, err := m.srcHW.GatherT(tcg, []hca.SGE{{Addr: m.srcVA, Length: uint32(n), LKey: m.srcRKey}})
	if err != nil {
		return 0, fmt.Errorf("mpi: RDMA read gather: %w", err)
	}
	dma.Wait(t) // never interleave with the send half's adapter traffic
	var tcs trace.Ctx
	if r.tr.Enabled() {
		tcs = r.tr.At(trace.TrackHCARx, clk.Now())
	}
	scatter, err := r.ctx.HW.ScatterRDMAT(tcs, mr.RKey, va, data)
	if err != nil {
		return 0, fmt.Errorf("mpi: RDMA read scatter: %w", err)
	}
	wire := r.world.cfg.Machine.HCA.WireLatency
	serialize := simtime.BandwidthTicks(int64(n), r.world.cfg.Machine.HCA.WireBandwidthMBs)
	done := clk.Now() + 2*wire + simtime.Max(simtime.Max(gather, serialize), scatter)
	clk.AdvanceTo(done)
	if tc := r.tctx(clk); tc.Enabled() && clk.Now() > rdmaStart {
		tc.SpanAt(trace.LMPI, "rdma.wait", rdmaStart, clk.Now()-rdmaStart)
	}
	if err := r.pollCQ(clk, faults.StreamWRRecv); err != nil {
		return 0, err
	}
	m.done.Push(t, clk.Now())
	relCost, err := r.cache.ReleaseT(r.tctx(clk), mr)
	if err != nil {
		return 0, err
	}
	clk.Advance(relCost)
	return n, nil
}

// Sendrecv performs the simultaneous send+receive used by IMB SendRecv
// and the NAS exchange patterns. The send half runs as a forked
// scheduler task so two ranks may Sendrecv each other without deadlock,
// exactly as in MPI.
//
// Three gates pin down the intra-rank ordering the old goroutine-pair
// design enforced with its ad-hoc sendGate web, now reduced to scheduler
// primitives with one invariant each:
//   - started: the send half reaches its registration point (or its
//     eager dispatch) before the recv half starts, so which half pays a
//     shared-cache miss is a function of the protocol, not of timing;
//   - dma: the send half's DMA gather hits the adapter's translation
//     cache before the recv half's scatter, matching the virtual-time
//     schedule where the outgoing RDMA is posted before the incoming
//     FIN is processed;
//   - rel: the send half releases its registration only after the recv
//     half is completely done with the cache (reference counts, zombie
//     teardown and its ATT shoot-down are order-sensitive), mirroring
//     virtual time, where the sender still waits out the RC ack.
func (r *Rank) Sendrecv(dst, sendTag int, sendVA vm.VA, sendN int,
	src, recvTag int, recvVA vm.VA, recvCap int) (int, error) {
	start := r.clock.Now()
	outer := r.enterMPI()
	sendClk := simtime.Clock{}
	sendClk.AdvanceTo(start)

	var n int
	var sendErr, recvErr error
	if r.canInlineSend(dst, sendN) {
		// Fast path: an eager send with a credit in hand and inbox room
		// cannot block, so running it inline to completion is exactly the
		// schedule the forked task would produce — minus the task.
		sendErr = r.sendOn(r.task, &sendClk, dst, sendTag, sendVA, sendN, nil, nil, nil)
		n, recvErr = r.recvOn(r.task, &r.clock, src, recvTag, recvVA, recvCap, nil, nil)
	} else {
		started := sched.NewGate(r.world.sched)
		dma := sched.NewGate(r.world.sched)
		rel := sched.NewGate(r.world.sched)
		sub := r.world.sched.Spawn(r.id, &sendClk, func(t *sched.Task) error {
			sendErr = r.sendOn(t, &sendClk, dst, sendTag, sendVA, sendN, started, dma, rel)
			// A send-half failure is Sendrecv's to report, not a reason
			// to abort the world before the recv half has resolved.
			return nil
		})
		started.Wait(r.task)
		n, recvErr = r.recvOn(r.task, &r.clock, src, recvTag, recvVA, recvCap, dma, rel)
		r.task.Join(sub)
	}
	r.clock.AdvanceTo(sendClk.Now())
	r.exitMPI("Sendrecv", start, outer)
	if sendErr != nil {
		return n, sendErr
	}
	return n, recvErr
}

// canInlineSend reports whether a Sendrecv's send half can run inline on
// the main task without ever parking: a valid eager-path send with an
// eager credit available and room in the peer's inbox. Anything else —
// rendezvous (always waits for CTS), an exhausted credit pool, a full
// inbox — needs the forked sub-task.
func (r *Rank) canInlineSend(dst, n int) bool {
	if dst < 0 || dst >= len(r.world.ranks) || dst == r.id {
		return false
	}
	if n < 0 || n > r.world.cfg.RdmaLimit {
		return false
	}
	return r.creditQ(dst).Len() > 0 && r.world.ranks[dst].inboxQ(r.id).Free() > 0
}
