package mpi

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/faults"
	"repro/internal/hca"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/vm"
)

// ErrWRFailed reports a work request whose completion kept erroring past
// the repost limit — the injected-fault equivalent of a fatal IBV_WC
// status.
var ErrWRFailed = errors.New("mpi: work request failed after retries")

// Transient completion-error recovery: a failed completion is reposted
// with exponential backoff, all in virtual time, bounded so a hostile
// fault period cannot hang a rank.
const (
	wrRetryLimit  = 8
	wrBackoffBase = simtime.Ticks(400)
)

// pollCQ drains one completion, injecting transient completion errors
// from the rank's fault schedule. Each error costs a backoff
// (wrBackoffBase << attempt) plus a re-poll; recovery is deterministic
// because the injector decides per (stream, event index), never by wall
// clock or goroutine timing. A nil injector reduces to the plain
// PollCQ cost advance.
func (r *Rank) pollCQ(clk *simtime.Clock, stream faults.WRStream) error {
	clk.Advance(r.ctx.PollCQT(r.tctx(clk)))
	if !r.inj.WRError(stream) {
		return nil
	}
	for attempt := 0; ; attempt++ {
		if attempt == wrRetryLimit {
			return fmt.Errorf("mpi: rank %d: %w", r.id, ErrWRFailed)
		}
		r.inj.RecordWRRetry()
		backoff := wrBackoffBase << uint(attempt)
		if tc := r.tctx(clk); tc.Enabled() {
			tc.Span(trace.LMPI, "wr.retry", backoff, trace.I64("attempt", int64(attempt)))
		}
		clk.Advance(backoff)
		clk.Advance(r.ctx.PollCQT(r.tctx(clk)))
		if !r.inj.WRError(stream) {
			return nil
		}
	}
}

// sendGate orders the two concurrent halves of a Sendrecv on the shared
// per-rank registration cache. In virtual time the send half registers at
// the call instant while the recv half registers only after the peer's
// RTS has crossed the wire; the gate makes the real-time schedule agree,
// so cost attribution — which half pays a cache miss, which touch order
// the LRU sees — is deterministic. A nil gate (plain Send/Recv) is inert.
type sendGate struct {
	ch   chan struct{}
	once sync.Once
}

func newSendGate() *sendGate { return &sendGate{ch: make(chan struct{})} }

// open marks the send half as past its registration point (or as never
// registering). It is safe to call more than once.
func (g *sendGate) open() {
	if g != nil {
		g.once.Do(func() { close(g.ch) })
	}
}

// wait blocks the recv half until the send half has opened the gate. The
// send half opens it without ever waiting on the network, so this cannot
// deadlock.
func (g *sendGate) wait() {
	if g != nil {
		<-g.ch
	}
}

// message kinds.
const (
	kindEager = iota
	kindRTS
)

// message is one wire-level unit between two ranks. Eager messages carry
// their payload; rendezvous starts with an RTS carrying reply channels.
type message struct {
	kind int
	src  int
	tag  int

	// flow is the trace arrow id linking the send post to the receive
	// (0 when tracing is disabled).
	flow uint64

	// eager
	data   []byte
	arrive simtime.Ticks // arrival instant at the receiver's NIC

	// rendezvous
	size  int
	ctsCh chan ctsMsg
	finCh chan finMsg

	// read-rendezvous (RGET): the sender's exposed region plus a channel
	// on which the receiver announces read completion.
	srcRKey uint32
	srcVA   vm.VA
	doneCh  chan simtime.Ticks
	srcHW   *hca.HCA
}

// ctsMsg is the receiver's clear-to-send: target rkey/address plus the
// receiver clock at which it was issued.
type ctsMsg struct {
	rkey uint32
	va   vm.VA
	t    simtime.Ticks
}

// finMsg announces the RDMA write: the payload plus the timing components
// the receiver needs to finish the pipeline model.
type finMsg struct {
	data      []byte
	start     simtime.Ticks // sender clock when the RDMA WR was posted
	gather    simtime.Ticks // sender-side DMA gather cost
	serialize simtime.Ticks // wire serialisation cost
}

// eagerPipelineTicks is the fixed software overhead of the eager path
// (header build, channel progress) beyond copies and HCA costs.
const eagerPipelineTicks = simtime.Ticks(220)

// Send transmits n bytes starting at va to rank dst with a tag. Protocol
// selection follows MVAPICH2: eager/copy up to the RDMA limit, RDMA-write
// rendezvous above it.
func (r *Rank) Send(dst, tag int, va vm.VA, n int) error {
	start := r.clock.Now()
	outer := r.enterMPI()
	err := r.sendOn(&r.clock, dst, tag, va, n, nil, nil, nil)
	r.exitMPI("Send", start, outer)
	return err
}

// sendOn is Send against an explicit clock (Sendrecv forks a send half).
// dma, when non-nil, orders this half's DMA gather before the recv
// half's scatter on the shared adapter; rel holds this half's cache
// release until the recv half has finished with the cache (see Sendrecv).
func (r *Rank) sendOn(clk *simtime.Clock, dst, tag int, va vm.VA, n int, g, dma, rel *sendGate) error {
	defer g.open() // never leave a gated recv half waiting
	defer dma.open()
	if err := r.checkPeer(dst); err != nil {
		return err
	}
	if n < 0 {
		return fmt.Errorf("mpi: negative send length %d", n)
	}
	if n > r.world.cfg.RdmaLimit {
		if r.world.cfg.RendezvousProtocol == "read" {
			return r.sendRendezvousRead(clk, dst, tag, va, n, g, dma, rel)
		}
		return r.sendRendezvous(clk, dst, tag, va, n, g, dma, rel)
	}
	g.open() // eager path never touches the registration cache
	return r.sendEager(clk, dst, tag, va, n)
}

// sendEager copies the payload through the preregistered bounce path and
// returns as soon as the local work is done (true eager semantics).
func (r *Rank) sendEager(clk *simtime.Clock, dst, tag int, va vm.VA, n int) error {
	// Flow control: consume one eager buffer credit for this peer; if the
	// receiver has not drained its bounce buffers we block here, and our
	// clock advances to the instant the credit was freed.
	waitStart := clk.Now()
	select {
	case freed := <-r.credits[dst]:
		clk.AdvanceTo(freed)
	case <-r.world.abort:
		return fmt.Errorf("mpi: rank %d awaiting eager credit for %d: %w", r.id, dst, ErrAborted)
	}
	if tc := r.tctx(clk); tc.Enabled() && clk.Now() > waitStart {
		tc.SpanAt(trace.LMPI, "credit.wait", waitStart, clk.Now()-waitStart)
	}
	var data []byte
	if n > 0 {
		data = make([]byte, n)
		if err := r.as.Read(va, data); err != nil {
			return err
		}
	}
	// CPU copy into the registered bounce buffer, then post + doorbell.
	copyCost := r.memcpyTicks(n) + eagerPipelineTicks
	if tc := r.tctx(clk); tc.Enabled() {
		tc.Span(trace.LMPI, "eager.copy", copyCost, trace.I64("bytes", int64(n)))
	}
	clk.Advance(copyCost)
	clk.Advance(r.ctx.PostSendT(r.tctx(clk), make([]hca.SGE, 1)))
	// The adapter gathers from the hot bounce buffer and serialises.
	arrive := clk.Now() + r.ctx.HW.WireCost(n)
	var flowID uint64
	if r.tr.Enabled() {
		flowID = r.nextFlow(dst)
		r.tctx(clk).FlowBegin(flowID)
	}
	// Local completion (inline/bounce: immediate).
	if err := r.pollCQ(clk, faults.StreamWRSend); err != nil {
		return err
	}
	r.world.ranks[dst].inbox[r.id] <- &message{
		kind: kindEager, src: r.id, tag: tag, data: data, arrive: arrive, flow: flowID,
	}
	return nil
}

// sendRendezvousRead runs the receiver-driven RGET protocol: the sender
// exposes its registered buffer in the RTS; the receiver issues an RDMA
// read and reports completion. One control hop shorter for the receiver
// than write-rendezvous, one wire round trip longer for the data.
func (r *Rank) sendRendezvousRead(clk *simtime.Clock, dst, tag int, va vm.VA, n int, g, dma, rel *sendGate) error {
	mr, cost, err := r.cache.AcquireT(r.tctx(clk), va, uint64(n))
	g.open()
	// The exposed buffer is read by the receiver's RDMA engine; this
	// half performs no local DMA, so the recv half need not wait.
	dma.open()
	if err != nil {
		return fmt.Errorf("mpi: read-rendezvous register: %w", err)
	}
	clk.Advance(cost)
	m := &message{
		kind: kindRTS, src: r.id, tag: tag, size: n,
		srcRKey: mr.RKey, srcVA: va,
		doneCh: make(chan simtime.Ticks, 1),
		srcHW:  r.ctx.HW,
	}
	clk.Advance(r.ctx.PostSendT(r.tctx(clk), make([]hca.SGE, 1)))
	m.arrive = clk.Now() + r.ctrlWire()
	if r.tr.Enabled() {
		m.flow = r.nextFlow(dst)
		r.tctx(clk).FlowBegin(m.flow)
	}
	r.world.ranks[dst].inbox[r.id] <- m

	waitStart := clk.Now()
	var done simtime.Ticks
	select {
	case done = <-m.doneCh:
	case <-r.world.abort:
		return fmt.Errorf("mpi: rank %d awaiting RDMA-read completion from %d: %w", r.id, dst, ErrAborted)
	}
	// The FIN arrives one control hop after the receiver finished.
	clk.AdvanceTo(done + r.ctrlWire())
	if tc := r.tctx(clk); tc.Enabled() && clk.Now() > waitStart {
		tc.SpanAt(trace.LMPI, "read.fin.wait", waitStart, clk.Now()-waitStart)
	}
	if err := r.pollCQ(clk, faults.StreamWRSend); err != nil {
		return err
	}
	rel.wait() // the recv half finishes with the cache first
	relCost, err := r.cache.ReleaseT(r.tctx(clk), mr)
	if err != nil {
		return err
	}
	clk.Advance(relCost)
	return nil
}

// sendRendezvous runs the registration + RDMA-write protocol.
func (r *Rank) sendRendezvous(clk *simtime.Clock, dst, tag int, va vm.VA, n int, g, dma, rel *sendGate) error {
	mr, cost, err := r.cache.AcquireT(r.tctx(clk), va, uint64(n))
	g.open()
	if err != nil {
		return fmt.Errorf("mpi: rendezvous register: %w", err)
	}
	clk.Advance(cost)

	m := &message{
		kind: kindRTS, src: r.id, tag: tag, size: n,
		ctsCh: make(chan ctsMsg, 1),
		finCh: make(chan finMsg, 1),
	}
	clk.Advance(r.ctx.PostSendT(r.tctx(clk), make([]hca.SGE, 1)))
	m.arrive = clk.Now() + r.ctrlWire()
	if r.tr.Enabled() {
		m.flow = r.nextFlow(dst)
		r.tctx(clk).FlowBegin(m.flow)
	}
	r.world.ranks[dst].inbox[r.id] <- m

	waitStart := clk.Now()
	var cts ctsMsg
	select {
	case cts = <-m.ctsCh:
	case <-r.world.abort:
		return fmt.Errorf("mpi: rank %d awaiting CTS from %d: %w", r.id, dst, ErrAborted)
	}
	clk.AdvanceTo(cts.t + r.ctrlWire())
	if tc := r.tctx(clk); tc.Enabled() && clk.Now() > waitStart {
		tc.SpanAt(trace.LMPI, "cts.wait", waitStart, clk.Now()-waitStart)
	}
	// CTS completion.
	if err := r.pollCQ(clk, faults.StreamWRSend); err != nil {
		return err
	}

	// Post the RDMA write; the adapter gathers the user buffer (real
	// bytes) while the wire serialises — the two stages pipeline. The
	// gather is drawn on the adapter's TX track, where it runs.
	var tcg trace.Ctx
	if r.tr.Enabled() {
		tcg = r.tr.At(trace.TrackHCATx, clk.Now())
	}
	data, gather, err := r.ctx.HW.GatherT(tcg, []hca.SGE{{Addr: va, Length: uint32(n), LKey: mr.LKey}})
	dma.open() // gather done; the recv half may now drive the adapter
	if err != nil {
		return fmt.Errorf("mpi: rendezvous gather: %w", err)
	}
	clk.Advance(r.ctx.PostSendT(r.tctx(clk), make([]hca.SGE, 1)))
	start := clk.Now()
	serialize := simtime.BandwidthTicks(int64(n), r.world.cfg.Machine.HCA.WireBandwidthMBs)
	m.finCh <- finMsg{data: data, start: start, gather: gather, serialize: serialize}

	// Local completion: RC ack after remote placement of the last packet.
	wire := r.world.cfg.Machine.HCA.WireLatency
	clk.AdvanceTo(start + wire + simtime.Max(gather, serialize) + wire)
	if tc := r.tctx(clk); tc.Enabled() && clk.Now() > start {
		tc.SpanAt(trace.LMPI, "rdma.ack.wait", start, clk.Now()-start)
	}
	if err := r.pollCQ(clk, faults.StreamWRSend); err != nil {
		return err
	}

	rel.wait() // the recv half finishes with the cache first
	relCost, err := r.cache.ReleaseT(r.tctx(clk), mr)
	if err != nil {
		return err
	}
	clk.Advance(relCost)
	// The CTS target is unused on the send side beyond addressing; the
	// receiver already validated it. Keep the variable meaningful:
	_ = cts.rkey
	return nil
}

// Recv receives up to cap bytes into va from rank src with a tag,
// returning the actual message size.
func (r *Rank) Recv(src, tag int, va vm.VA, capacity int) (int, error) {
	start := r.clock.Now()
	outer := r.enterMPI()
	n, err := r.recvOn(&r.clock, src, tag, va, capacity, nil, nil, nil)
	r.exitMPI("Recv", start, outer)
	return n, err
}

// recvOn matches and completes one incoming message. It must run on the
// rank's main goroutine (it owns the pending queues). rel is opened when
// this half is completely done with the registration cache, releasing a
// gated send half; opening happens on every exit path so an early error
// cannot strand the sender.
func (r *Rank) recvOn(clk *simtime.Clock, src, tag int, va vm.VA, capacity int, g, dma, rel *sendGate) (int, error) {
	defer rel.open()
	if err := r.checkPeer(src); err != nil {
		return 0, err
	}
	waitStart := clk.Now()
	m := r.matchRecv(src, tag)
	if m == nil {
		return 0, fmt.Errorf("mpi: rank %d receiving from %d: %w", r.id, src, ErrAborted)
	}
	switch m.kind {
	case kindEager:
		n := len(m.data)
		if n > capacity {
			return 0, fmt.Errorf("mpi: eager truncation: got %d bytes, capacity %d", n, capacity)
		}
		clk.AdvanceTo(m.arrive)
		if tc := r.tctx(clk); tc.Enabled() {
			if clk.Now() > waitStart {
				tc.SpanAt(trace.LMPI, "recv.wait", waitStart, clk.Now()-waitStart)
			}
			if m.flow != 0 {
				tc.FlowEnd(m.flow)
			}
		}
		if err := r.pollCQ(clk, faults.StreamWRRecv); err != nil {
			return 0, err
		}
		if n > 0 {
			copyCost := r.memcpyTicks(n) + eagerPipelineTicks
			if tc := r.tctx(clk); tc.Enabled() {
				tc.Span(trace.LMPI, "eager.copy", copyCost, trace.I64("bytes", int64(n)))
			}
			clk.Advance(copyCost)
			if err := r.as.Write(va, m.data); err != nil {
				return 0, err
			}
		}
		// Return the eager buffer credit to the sender, stamped with the
		// time the bounce buffer became free again.
		select {
		case r.world.ranks[src].credits[r.id] <- clk.Now():
		default: // pool already full (e.g. duplicated teardown) — drop
		}
		return n, nil

	case kindRTS:
		n := m.size
		if n > capacity {
			return 0, fmt.Errorf("mpi: rendezvous truncation: got %d bytes, capacity %d", n, capacity)
		}
		clk.AdvanceTo(m.arrive)
		if tc := r.tctx(clk); tc.Enabled() {
			if clk.Now() > waitStart {
				tc.SpanAt(trace.LMPI, "recv.wait", waitStart, clk.Now()-waitStart)
			}
			if m.flow != 0 {
				tc.FlowEnd(m.flow)
			}
		}
		// RTS completion.
		if err := r.pollCQ(clk, faults.StreamWRRecv); err != nil {
			return 0, err
		}
		if m.doneCh != nil {
			return r.recvRendezvousRead(clk, m, va, g, dma)
		}
		g.wait()
		mr, cost, err := r.cache.AcquireT(r.tctx(clk), va, uint64(n))
		if err != nil {
			return 0, fmt.Errorf("mpi: rendezvous recv register: %w", err)
		}
		clk.Advance(cost)
		clk.Advance(r.ctx.PostSendT(r.tctx(clk), make([]hca.SGE, 1))) // CTS post
		m.ctsCh <- ctsMsg{rkey: mr.RKey, va: va, t: clk.Now()}

		rdmaStart := clk.Now()
		var fin finMsg
		select {
		case fin = <-m.finCh:
		case <-r.world.abort:
			return 0, fmt.Errorf("mpi: rank %d awaiting data from %d: %w", r.id, src, ErrAborted)
		}
		dma.wait() // the send half's gather drives the adapter first
		var tcs trace.Ctx
		if r.tr.Enabled() {
			tcs = r.tr.At(trace.TrackHCARx, clk.Now())
		}
		scatter, err := r.ctx.HW.ScatterRDMAT(tcs, mr.RKey, va, fin.data)
		if err != nil {
			return 0, fmt.Errorf("mpi: rendezvous scatter: %w", err)
		}
		wire := r.world.cfg.Machine.HCA.WireLatency
		done := fin.start + wire + simtime.Max(simtime.Max(fin.gather, fin.serialize), scatter)
		clk.AdvanceTo(done)
		if tc := r.tctx(clk); tc.Enabled() && clk.Now() > rdmaStart {
			tc.SpanAt(trace.LMPI, "rdma.wait", rdmaStart, clk.Now()-rdmaStart)
		}
		// FIN completion.
		if err := r.pollCQ(clk, faults.StreamWRRecv); err != nil {
			return 0, err
		}
		relCost, err := r.cache.ReleaseT(r.tctx(clk), mr)
		if err != nil {
			return 0, err
		}
		clk.Advance(relCost)
		return n, nil
	}
	return 0, fmt.Errorf("mpi: unknown message kind %d", m.kind)
}

// recvRendezvousRead completes a read-rendezvous: register the local
// buffer, RDMA-read from the sender's exposed region, notify the sender.
func (r *Rank) recvRendezvousRead(clk *simtime.Clock, m *message, va vm.VA, g, dma *sendGate) (int, error) {
	n := m.size
	g.wait()
	mr, cost, err := r.cache.AcquireT(r.tctx(clk), va, uint64(n))
	if err != nil {
		return 0, fmt.Errorf("mpi: read-rendezvous recv register: %w", err)
	}
	clk.Advance(cost)
	clk.Advance(r.ctx.PostSendT(r.tctx(clk), make([]hca.SGE, 1))) // RDMA READ WR

	rdmaStart := clk.Now()
	// The read request crosses the wire, the sender's adapter gathers,
	// the response streams back, our adapter scatters. Data and request
	// both traverse the link: one extra one-way latency vs RDMA write.
	// The receiver drives the read, so the remote gather is drawn on the
	// receiver's TX track — a documented simplification (the arrow in
	// the trace still points at the data's true origin via the flow).
	var tcg trace.Ctx
	if r.tr.Enabled() {
		tcg = r.tr.At(trace.TrackHCATx, clk.Now())
	}
	data, gather, err := m.srcHW.GatherT(tcg, []hca.SGE{{Addr: m.srcVA, Length: uint32(n), LKey: m.srcRKey}})
	if err != nil {
		return 0, fmt.Errorf("mpi: RDMA read gather: %w", err)
	}
	dma.wait() // never interleave with the send half's adapter traffic
	var tcs trace.Ctx
	if r.tr.Enabled() {
		tcs = r.tr.At(trace.TrackHCARx, clk.Now())
	}
	scatter, err := r.ctx.HW.ScatterRDMAT(tcs, mr.RKey, va, data)
	if err != nil {
		return 0, fmt.Errorf("mpi: RDMA read scatter: %w", err)
	}
	wire := r.world.cfg.Machine.HCA.WireLatency
	serialize := simtime.BandwidthTicks(int64(n), r.world.cfg.Machine.HCA.WireBandwidthMBs)
	done := clk.Now() + 2*wire + simtime.Max(simtime.Max(gather, serialize), scatter)
	clk.AdvanceTo(done)
	if tc := r.tctx(clk); tc.Enabled() && clk.Now() > rdmaStart {
		tc.SpanAt(trace.LMPI, "rdma.wait", rdmaStart, clk.Now()-rdmaStart)
	}
	if err := r.pollCQ(clk, faults.StreamWRRecv); err != nil {
		return 0, err
	}
	m.doneCh <- clk.Now()
	relCost, err := r.cache.ReleaseT(r.tctx(clk), mr)
	if err != nil {
		return 0, err
	}
	clk.Advance(relCost)
	return n, nil
}

// roundedRange is the page-rounded span the registration cache would pin
// for [va, va+n) — the same rounding Cache.Acquire applies.
func (r *Rank) roundedRange(va vm.VA, n int) (lo, hi uint64) {
	lo, hi = uint64(va), uint64(va)+uint64(n)
	if _, class, err := r.as.Translate(va); err == nil {
		ps := class.Size()
		lo = lo / ps * ps
		hi = (hi + ps - 1) / ps * ps
	}
	return lo, hi
}

// Sendrecv performs the simultaneous send+receive used by IMB SendRecv
// and the NAS exchange patterns. The send half runs concurrently so two
// ranks may Sendrecv each other without deadlock, exactly as in MPI.
func (r *Rank) Sendrecv(dst, sendTag int, sendVA vm.VA, sendN int,
	src, recvTag int, recvVA vm.VA, recvCap int) (int, error) {
	start := r.clock.Now()
	outer := r.enterMPI()
	sendClk := simtime.Clock{}
	sendClk.AdvanceTo(start)
	// Only overlapping pinned spans can make one half hit the other
	// half's fresh registration, where who-pays-the-miss would depend on
	// goroutine scheduling; disjoint spans miss independently and need no
	// ordering.
	var gate *sendGate
	if r.ctx.MemlockLimit > 0 || r.cache.MaxPinned > 0 {
		// Under a memlock ceiling the halves contend for the shared
		// pinned-bytes budget even with disjoint spans: either half's
		// registration may trip evict-and-retry against state the other
		// half just changed, so the registration order must be pinned
		// down regardless of overlap. A pin-down cache bound (MaxPinned)
		// raises the same hazard through a different door: every acquire
		// reorders the shared LRU list that eviction walks, so which
		// entry is sacrificed later would depend on which half's acquire
		// won the race.
		gate = newSendGate()
	} else if sLo, sHi := r.roundedRange(sendVA, sendN); true {
		if rLo, rHi := r.roundedRange(recvVA, recvCap); sLo < rHi && rLo < sHi {
			gate = newSendGate()
		}
	}
	// The two halves also share the adapter: its translation cache has
	// real mutable state (set occupancy, replacement order), so the
	// halves' DMA operations must hit it in a fixed order — gather
	// before scatter, matching the virtual-time schedule where the
	// outgoing RDMA is posted before the incoming FIN is processed.
	// Unlike the registration gate this one is unconditional: any two
	// interleaved page walks can contend for the same cache set.
	dma := newSendGate()
	// Releases mutate the shared registration cache too (reference
	// counts, zombie teardown and its ATT shoot-down), so they need a
	// fixed order just like the acquires. The recv half finishes first
	// in virtual time (the sender still waits out the RC ack), so the
	// real-time schedule agrees: the send half releases only after the
	// recv half is completely done with the cache.
	rel := newSendGate()
	errCh := make(chan error, 1)
	go func() {
		errCh <- r.sendOn(&sendClk, dst, sendTag, sendVA, sendN, gate, dma, rel)
	}()
	n, recvErr := r.recvOn(&r.clock, src, recvTag, recvVA, recvCap, gate, dma, rel)
	sendErr := <-errCh
	r.clock.AdvanceTo(sendClk.Now())
	r.exitMPI("Sendrecv", start, outer)
	if sendErr != nil {
		return n, sendErr
	}
	return n, recvErr
}
