// Package verbs is the user-level verbs layer of the simulated stack: it
// owns memory registration and exposes the work-request primitives the
// communication library builds on.
//
// Registration follows the paper's three steps exactly (Section 3):
//
//  1. all pages of the communication buffer are pinned,
//  2. each page's virtual start address is translated to a physical one,
//  3. the translations are pushed to the NIC (MTT update commands).
//
// Every step is charged per page, so a 2 MiB buffer costs 512 pin +
// translate + push units in small pages but just 1 in hugepages — this is
// why "the effect of hugepage utilization is enormous, as memory
// registration time decreased extremely (down to 1 % of the time as with
// small pages)".
//
// HugeATT models the paper's OpenIB driver patch ("we modified it in a way
// to send hugepages to the adapter when those are used"): when false, the
// driver pretends 4 KiB pages and expands each hugepage into 512 MTT
// entries; when true it installs one 2 MiB entry per hugepage.
package verbs

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/hca"
	"repro/internal/machine"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/vm"
)

// ErrMemlockExceeded reports a registration refused because it would
// push the process's pinned bytes past the RLIMIT_MEMLOCK ceiling.
// Callers with a cache of idle registrations (regcache) can recover by
// evicting and retrying.
var ErrMemlockExceeded = errors.New("verbs: RLIMIT_MEMLOCK exceeded")

// MR is a user-visible registered memory region.
type MR struct {
	VA     vm.VA
	Length uint64
	LKey   uint32
	RKey   uint32
	Huge   bool // backed by hugepages
	// Entries is the number of MTT entries the registration pushed.
	Entries int

	hw *hca.MR
	// pinnedBytes is the page-rounded footprint charged against the
	// memlock budget; DeregMR gives it back. pinnedPages is the page
	// count behind the PagesPinned gauge, remembered the same way.
	pinnedBytes int64
	pinnedPages int64
}

// Stats counts registration activity and time, so benchmarks can separate
// registration overhead from transfer time (the two cases of Figure 5).
type Stats struct {
	Registrations   int64
	Deregistrations int64
	RegTicks        simtime.Ticks
	DeregTicks      simtime.Ticks
	PagesPinned     int64 // gauge: pages currently pinned
	// PinnedBytes is the current page-rounded registered footprint —
	// what RLIMIT_MEMLOCK meters (gauge).
	PinnedBytes int64
	// MemlockRejections counts registrations refused at the ceiling.
	MemlockRejections int64
}

// Context is one process's verbs context.
type Context struct {
	AS *vm.AddressSpace
	HW *hca.HCA
	// HugeATT enables the hugepage-translation driver patch.
	HugeATT bool
	// MemlockLimit caps the registered (pinned) footprint in bytes,
	// modeling RLIMIT_MEMLOCK; 0 = unlimited. Set before first use.
	MemlockLimit int64

	mach *machine.Machine

	mu    sync.Mutex
	stats Stats
}

// Open creates a verbs context for an address space on a machine's HCA.
func Open(m *machine.Machine, as *vm.AddressSpace) *Context {
	return &Context{
		AS:   as,
		HW:   hca.New(m, as.Mem()),
		mach: m,
	}
}

// RegMR registers [va, va+length) and returns the MR plus the time the
// registration took.
func (c *Context) RegMR(va vm.VA, length uint64) (*MR, simtime.Ticks, error) {
	return c.RegMRT(trace.Ctx{}, va, length)
}

// RegMRT is RegMR with tracing: a successful registration emits a
// verbs-layer RegMR span decomposed into the paper's three steps (pin,
// translate, MTT push) plus the syscall entry, starting at the trace
// position tc. A zero (disabled) Ctx records nothing and adds no
// allocations — this is the hot path guarded by the zero-alloc tests.
func (c *Context) RegMRT(tc trace.Ctx, va vm.VA, length uint64) (*MR, simtime.Ticks, error) {
	if length == 0 {
		return nil, 0, fmt.Errorf("verbs: zero-length registration at %#x", uint64(va))
	}
	cost := c.mach.Mem.SyscallTicks
	pages, err := c.AS.Pin(va, length)
	if err != nil {
		return nil, 0, fmt.Errorf("verbs: pin: %w", err)
	}
	// Steps 1+2: pin and translate, per actual page.
	cost += simtime.Ticks(len(pages)) * (c.mach.Mem.PinTicks + c.mach.Mem.TranslateTicks)

	// RLIMIT_MEMLOCK: the page-rounded footprint is what the kernel
	// charges; reserve it atomically so concurrent registrations can't
	// jointly slip past the ceiling.
	var pinned int64
	for _, p := range pages {
		pinned += int64(p.Class.Size())
	}
	c.mu.Lock()
	if c.MemlockLimit > 0 && c.stats.PinnedBytes+pinned > c.MemlockLimit {
		held := c.stats.PinnedBytes
		c.stats.MemlockRejections++
		c.mu.Unlock()
		_ = c.AS.Unpin(va, length)
		if tc.Enabled() {
			tc.Event(trace.LVerbs, "memlock.reject",
				trace.I64("held_bytes", held), trace.I64("req_bytes", pinned))
		}
		return nil, 0, fmt.Errorf("verbs: %d pinned + %d requested > limit %d: %w",
			held, pinned, c.MemlockLimit, ErrMemlockExceeded)
	}
	c.stats.PinnedBytes += pinned
	c.mu.Unlock()

	hw, err := c.HW.InstallMR(va, length, pages, c.HugeATT)
	if err != nil {
		c.mu.Lock()
		c.stats.PinnedBytes -= pinned
		c.mu.Unlock()
		_ = c.AS.Unpin(va, length)
		return nil, 0, fmt.Errorf("verbs: install: %w", err)
	}
	// Step 3: push translations to the NIC, batched.
	batches := (hw.NumEntries() + c.mach.HCA.MTTPushBatch - 1) / c.mach.HCA.MTTPushBatch
	cost += simtime.Ticks(batches) * c.mach.HCA.MTTPushTicks

	if tc.Enabled() {
		np := simtime.Ticks(len(pages))
		tc.SpanAt(trace.LVerbs, "RegMR", tc.Now(), cost,
			trace.I64("bytes", int64(length)),
			trace.I64("pages", int64(len(pages))),
			trace.I64("entries", int64(hw.NumEntries())),
			trace.I64("huge", b2i(pages[0].Class == vm.Huge)))
		child := tc.Span(trace.LVerbs, "syscall", c.mach.Mem.SyscallTicks)
		child = child.Span(trace.LVerbs, "pin", np*c.mach.Mem.PinTicks)
		child = child.Span(trace.LVerbs, "translate", np*c.mach.Mem.TranslateTicks)
		child.Span(trace.LVerbs, "mtt.push", simtime.Ticks(batches)*c.mach.HCA.MTTPushTicks,
			trace.I64("batches", int64(batches)))
	}

	mr := &MR{
		VA:          va,
		Length:      length,
		LKey:        hw.LKey,
		RKey:        hw.RKey,
		Huge:        pages[0].Class == vm.Huge,
		Entries:     hw.NumEntries(),
		hw:          hw,
		pinnedBytes: pinned,
		pinnedPages: int64(len(pages)),
	}
	c.mu.Lock()
	c.stats.Registrations++
	c.stats.RegTicks += cost
	c.stats.PagesPinned += int64(len(pages))
	c.mu.Unlock()
	return mr, cost, nil
}

// b2i renders a bool as a span argument value.
func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// DeregMR releases a region: MTT teardown, unpin.
func (c *Context) DeregMR(mr *MR) (simtime.Ticks, error) {
	return c.DeregMRT(trace.Ctx{}, mr)
}

// DeregMRT is DeregMR with tracing; the span starts at tc's position.
func (c *Context) DeregMRT(tc trace.Ctx, mr *MR) (simtime.Ticks, error) {
	cost := c.mach.Mem.SyscallTicks
	if err := c.HW.RemoveMR(mr.LKey); err != nil {
		return 0, err
	}
	if err := c.AS.Unpin(mr.VA, mr.Length); err != nil {
		return 0, fmt.Errorf("verbs: unpin: %w", err)
	}
	// Unpinning is cheaper than pinning; charge half the pin rate.
	pages := int64(mr.Length+machine.SmallPageSize-1) / machine.SmallPageSize
	if mr.Huge {
		pages = int64(mr.Length+machine.HugePageSize-1) / machine.HugePageSize
	}
	cost += simtime.Ticks(pages) * c.mach.Mem.PinTicks / 2
	c.mu.Lock()
	c.stats.Deregistrations++
	c.stats.DeregTicks += cost
	c.stats.PinnedBytes -= mr.pinnedBytes
	c.stats.PagesPinned -= mr.pinnedPages
	c.mu.Unlock()
	if tc.Enabled() {
		tc.SpanAt(trace.LVerbs, "DeregMR", tc.Now(), cost,
			trace.I64("bytes", int64(mr.Length)), trace.I64("pages", mr.pinnedPages))
	}
	return cost, nil
}

// PostSend charges for posting a send work request with the given gather
// list and returns the post cost. The actual data motion is performed by
// Execute* on the coordinating layer.
func (c *Context) PostSend(sges []hca.SGE) simtime.Ticks {
	return c.HW.PostCost(len(sges))
}

// PostSendT is PostSend with tracing: the post cost is emitted as an
// hca-layer span at tc. The disabled path must stay allocation-free
// (this is the per-message hot path), hence the Enabled guard around
// the argument construction.
func (c *Context) PostSendT(tc trace.Ctx, sges []hca.SGE) simtime.Ticks {
	cost := c.HW.PostCost(len(sges))
	if tc.Enabled() {
		tc.SpanAt(trace.LHCA, "post", tc.Now(), cost, trace.I64("sges", int64(len(sges))))
	}
	return cost
}

// PostRecv charges for posting a receive work request.
func (c *Context) PostRecv(sges []hca.SGE) simtime.Ticks {
	return c.HW.PostCost(len(sges))
}

// PostRecvT is PostRecv with tracing (see PostSendT).
func (c *Context) PostRecvT(tc trace.Ctx, sges []hca.SGE) simtime.Ticks {
	cost := c.HW.PostCost(len(sges))
	if tc.Enabled() {
		tc.SpanAt(trace.LHCA, "post", tc.Now(), cost, trace.I64("sges", int64(len(sges))))
	}
	return cost
}

// PollCQ charges for reaping one completion.
func (c *Context) PollCQ() simtime.Ticks { return c.HW.PollCost() }

// PollCQT is PollCQ with tracing.
func (c *Context) PollCQT(tc trace.Ctx) simtime.Ticks {
	cost := c.HW.PollCost()
	if tc.Enabled() {
		tc.SpanAt(trace.LHCA, "poll", tc.Now(), cost)
	}
	return cost
}

// Stats returns a snapshot.
func (c *Context) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// ResetStats zeroes the registration counters (between benchmark
// phases). PinnedBytes and PagesPinned are live gauges backing the
// memlock budget, not phase counters — they survive the reset.
func (c *Context) ResetStats() {
	c.mu.Lock()
	c.stats = Stats{
		PinnedBytes: c.stats.PinnedBytes,
		PagesPinned: c.stats.PagesPinned,
	}
	c.mu.Unlock()
}

// Machine exposes the context's machine description.
func (c *Context) Machine() *machine.Machine { return c.mach }
