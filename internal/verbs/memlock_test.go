package verbs_test

import (
	"errors"
	"testing"

	"repro/internal/machine"
	"repro/internal/verbs"
)

func TestMemlockCeilingRejects(t *testing.T) {
	c := ctx(t, machine.Opteron())
	c.MemlockLimit = 1536 << 10 // room for one 1 MiB registration, not two
	va1, _ := c.AS.MapSmall(1 << 20)
	va2, _ := c.AS.MapSmall(1 << 20)
	mr1, _, err := c.RegMR(va1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.RegMR(va2, 1<<20); !errors.Is(err, verbs.ErrMemlockExceeded) {
		t.Fatalf("second registration: got %v, want ErrMemlockExceeded", err)
	}
	st := c.Stats()
	if st.MemlockRejections != 1 {
		t.Fatalf("MemlockRejections = %d, want 1", st.MemlockRejections)
	}
	if st.PinnedBytes != 1<<20 {
		t.Fatalf("rejection must not leak budget: pinned %d, want %d", st.PinnedBytes, 1<<20)
	}
	// Deregistration returns the budget; the refused registration now fits.
	if _, err := c.DeregMR(mr1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.RegMR(va2, 1<<20); err != nil {
		t.Fatalf("registration after budget release: %v", err)
	}
	if got := c.Stats().PinnedBytes; got != 1<<20 {
		t.Fatalf("pinned gauge = %d, want %d", got, 1<<20)
	}
}

func TestPinnedBytesSurvivesStatsReset(t *testing.T) {
	c := ctx(t, machine.Opteron())
	va, _ := c.AS.MapSmall(1 << 20)
	if _, _, err := c.RegMR(va, 1<<20); err != nil {
		t.Fatal(err)
	}
	c.ResetStats()
	st := c.Stats()
	if st.Registrations != 0 {
		t.Fatal("phase counters should reset")
	}
	if st.PinnedBytes != 1<<20 {
		t.Fatalf("PinnedBytes is a live gauge, must survive reset: %d", st.PinnedBytes)
	}
}

func TestNoLimitMeansUnlimited(t *testing.T) {
	c := ctx(t, machine.Opteron()) // MemlockLimit zero
	for i := 0; i < 4; i++ {
		va, _ := c.AS.MapSmall(4 << 20)
		if _, _, err := c.RegMR(va, 4<<20); err != nil {
			t.Fatalf("registration %d under no limit: %v", i, err)
		}
	}
}
