package verbs_test

import (
	"testing"

	"repro/internal/hca"
	"repro/internal/machine"
	"repro/internal/node/nodetest"
	"repro/internal/verbs"
)

func ctx(t *testing.T, m *machine.Machine) *verbs.Context {
	t.Helper()
	return nodetest.New(t, m).Verbs
}

func TestRegMRCostScalesWithPages(t *testing.T) {
	c := ctx(t, machine.Opteron())
	va1, _ := c.AS.MapSmall(1 << 20)
	va8, _ := c.AS.MapSmall(8 << 20)
	_, t1, err := c.RegMR(va1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	_, t8, err := c.RegMR(va8, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	r := float64(t8) / float64(t1)
	if r < 5 || r > 9 {
		t.Fatalf("8MiB/1MiB registration ratio = %.2f, want ~8 (page-dominated)", r)
	}
}

func TestHugepageRegistrationIsAboutOnePercent(t *testing.T) {
	// Section 5.1, item 1: with hugepages, registration time decreased
	// "down to 1 % of the time as with small pages". Check at 8 MiB.
	c := ctx(t, machine.Opteron())
	c.HugeATT = true
	const size = 8 << 20
	vaS, _ := c.AS.MapSmall(size)
	vaH, _ := c.AS.MapHuge(size)
	_, tS, err := c.RegMR(vaS, size)
	if err != nil {
		t.Fatal(err)
	}
	_, tH, err := c.RegMR(vaH, size)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(tH) / float64(tS)
	if frac > 0.03 {
		t.Fatalf("huge/small registration = %.4f, want <= 0.03 (~1%%)", frac)
	}
	t.Logf("registration 8MiB: small=%v huge=%v (%.2f%%)", tS, tH, 100*frac)
}

func TestUnpatchedDriverStillPushes4KEntries(t *testing.T) {
	c := ctx(t, machine.Opteron())
	c.HugeATT = false // kernel pretends 4 KB pages
	va, _ := c.AS.MapHuge(4 << 20)
	mr, _, err := c.RegMR(va, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	if mr.Entries != 1024 {
		t.Fatalf("unpatched driver pushed %d entries, want 1024", mr.Entries)
	}
	if !mr.Huge {
		t.Fatal("MR should still know it is hugepage-backed")
	}
}

func TestDeregUnpinsAndInvalidates(t *testing.T) {
	c := ctx(t, machine.Opteron())
	va, _ := c.AS.MapSmall(64 << 10)
	mr, _, err := c.RegMR(va, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	// Pinned: unmap must fail.
	if err := c.AS.Unmap(va, 64<<10); err == nil {
		t.Fatal("unmap of registered buffer should fail")
	}
	if _, err := c.DeregMR(mr); err != nil {
		t.Fatal(err)
	}
	if err := c.AS.Unmap(va, 64<<10); err != nil {
		t.Fatalf("unmap after dereg: %v", err)
	}
	// The HCA must have dropped the key.
	if _, _, err := c.HW.Gather([]hca.SGE{{Addr: va, Length: 8, LKey: mr.LKey}}); err == nil {
		t.Fatal("stale lkey still valid after dereg")
	}
	st := c.Stats()
	if st.Registrations != 1 || st.Deregistrations != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPinnedGaugesReturnToZero(t *testing.T) {
	// PagesPinned and PinnedBytes are gauges (reprolint:statspairing):
	// a full register/deregister cycle must return both to zero.
	// PagesPinned used to be one-way — incremented on RegMR, never
	// given back on DeregMR.
	c := ctx(t, machine.Opteron())
	vaS, _ := c.AS.MapSmall(64 << 10)
	vaH, _ := c.AS.MapHuge(4 << 20)
	mrS, _, err := c.RegMR(vaS, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	mrH, _, err := c.RegMR(vaH, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.PagesPinned == 0 || st.PinnedBytes == 0 {
		t.Fatalf("gauges flat while registered: %+v", st)
	}
	if _, err := c.DeregMR(mrH); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DeregMR(mrS); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.PagesPinned != 0 || st.PinnedBytes != 0 {
		t.Fatalf("pinned gauges leak after full dereg: pages=%d bytes=%d", st.PagesPinned, st.PinnedBytes)
	}
}

func TestZeroLengthRegRejected(t *testing.T) {
	c := ctx(t, machine.Opteron())
	if _, _, err := c.RegMR(0x1000, 0); err == nil {
		t.Fatal("zero-length registration accepted")
	}
}

func TestRegUnmappedFails(t *testing.T) {
	c := ctx(t, machine.Opteron())
	if _, _, err := c.RegMR(0xdead0000, 4096); err == nil {
		t.Fatal("registration of unmapped range accepted")
	}
}

func TestPostAndPollCharge(t *testing.T) {
	c := ctx(t, machine.SystemP())
	if c.PostSend(make([]hca.SGE, 4)) <= c.PostSend(make([]hca.SGE, 1)) {
		t.Fatal("more SGEs should cost more to post")
	}
	if c.PollCQ() <= 0 {
		t.Fatal("poll must cost time")
	}
	if c.PostRecv(make([]hca.SGE, 2)) <= 0 {
		t.Fatal("post recv must cost time")
	}
}

func TestResetStats(t *testing.T) {
	c := ctx(t, machine.Opteron())
	va, _ := c.AS.MapSmall(4096)
	if _, _, err := c.RegMR(va, 4096); err != nil {
		t.Fatal(err)
	}
	c.ResetStats()
	if st := c.Stats(); st.Registrations != 0 || st.RegTicks != 0 {
		t.Fatal("ResetStats failed")
	}
}
