package verbs_test

import (
	"testing"

	"repro/internal/hca"
	"repro/internal/machine"
	"repro/internal/node/nodetest"
	"repro/internal/trace"
	"repro/internal/verbs"
)

// The tracing satellite's zero-cost contract: when no -trace flag armed
// a collector, every T-suffixed hot-path variant must behave exactly
// like its untraced twin — in particular it must not allocate on behalf
// of the disabled tracer (arg slices, contexts, closures). These guards
// pin that with testing.AllocsPerRun: the traced call with a zero Ctx
// allocates exactly as much as the untraced call.

// regAllocs measures steady-state allocations of one register/deregister
// round trip through f.
func regAllocs(t *testing.T, c *verbs.Context, f func() (*verbs.MR, error)) float64 {
	t.Helper()
	return testing.AllocsPerRun(50, func() {
		mr, err := f()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.DeregMR(mr); err != nil {
			t.Fatal(err)
		}
	})
}

func TestDisabledTraceAddsNoAllocsOnRegMR(t *testing.T) {
	c := ctx(t, machine.Opteron())
	va, err := c.AS.MapSmall(256 << 10)
	if err != nil {
		t.Fatal(err)
	}
	base := regAllocs(t, c, func() (*verbs.MR, error) {
		mr, _, err := c.RegMR(va, 256<<10)
		return mr, err
	})
	traced := regAllocs(t, c, func() (*verbs.MR, error) {
		mr, _, err := c.RegMRT(trace.Ctx{}, va, 256<<10)
		return mr, err
	})
	if traced > base {
		t.Fatalf("RegMRT with disabled tracing allocates %.1f/op, untraced RegMR %.1f/op", traced, base)
	}
}

func TestDisabledTraceAddsNoAllocsOnPostPoll(t *testing.T) {
	c := ctx(t, machine.Opteron())
	va, err := c.AS.MapSmall(64 << 10)
	if err != nil {
		t.Fatal(err)
	}
	mr, _, err := c.RegMR(va, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	sgl := []hca.SGE{{Addr: va, Length: 4096, LKey: mr.LKey}}
	base := testing.AllocsPerRun(100, func() {
		c.PostSend(sgl)
		c.PostRecv(sgl)
		c.PollCQ()
	})
	traced := testing.AllocsPerRun(100, func() {
		c.PostSendT(trace.Ctx{}, sgl)
		c.PostRecvT(trace.Ctx{}, sgl)
		c.PollCQT(trace.Ctx{})
	})
	if traced > base {
		t.Fatalf("post/poll with disabled tracing allocates %.1f/op, untraced %.1f/op", traced, base)
	}
	if base != 0 {
		t.Fatalf("untraced post/poll path allocates %.1f/op, want 0", base)
	}
}

// BenchmarkRegMRUntraced / BenchmarkRegMRDisabledTrace exist so a perf
// regression on the hot path shows up as a benchmark delta, not only as
// the alloc-count guard above.
func BenchmarkRegMRUntraced(b *testing.B) {
	c := benchCtx(b)
	va, err := c.AS.MapSmall(256 << 10)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mr, _, err := c.RegMR(va, 256<<10)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.DeregMR(mr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRegMRDisabledTrace(b *testing.B) {
	c := benchCtx(b)
	va, err := c.AS.MapSmall(256 << 10)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mr, _, err := c.RegMRT(trace.Ctx{}, va, 256<<10)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.DeregMR(mr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPostSendDisabledTrace(b *testing.B) {
	c := benchCtx(b)
	va, err := c.AS.MapSmall(64 << 10)
	if err != nil {
		b.Fatal(err)
	}
	mr, _, err := c.RegMR(va, 64<<10)
	if err != nil {
		b.Fatal(err)
	}
	sgl := []hca.SGE{{Addr: va, Length: 4096, LKey: mr.LKey}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.PostSendT(trace.Ctx{}, sgl)
		c.PollCQT(trace.Ctx{})
	}
}

func benchCtx(b *testing.B) *verbs.Context {
	b.Helper()
	return nodetest.New(b, machine.Opteron()).Verbs
}
