// Package nodetest builds simulated hosts for the layer tests. Every
// package under the node (alloc, vm, hca, verbs, regcache, workload)
// gets its fixtures here instead of hand-rolling the
// phys.NewMemory/vm.New/verbs.Open stack.
package nodetest

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/node"
)

// New builds an idle host on m with an unscrambled frame pool — the
// layer tests' historical setup, under which frames come out of the
// pools in allocation order and physical layouts are easy to assert.
func New(t testing.TB, m *machine.Machine) *node.Node {
	t.Helper()
	n, err := node.New(node.Config{Machine: m, ScrambleDepth: node.NoScramble})
	if err != nil {
		t.Fatal(err)
	}
	return n
}
