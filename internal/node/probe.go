package node

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/vm"
)

// DegradationProbe drives the node's allocation and registration path
// hard enough to surface degraded-mode behaviour under an active fault
// spec: a deterministic ladder of large allocations (hugepage-library
// requests that redirect to libc once the pool runs dry), each
// registered through the pin-down cache (tripping the memlock
// evict-and-retry policy when a ceiling is set), then invalidated and
// freed. It exists for the -stats workloads of tools whose primary
// sweep never touches the allocator (sgebench, offsetbench) and rides
// along in allocbench; with no fault spec it is just a short, clean
// allocate/register/free exercise.
//
// The ladder holds all blocks live before releasing any, so a capped
// pool genuinely exhausts, and it keeps every registration released
// (refcount zero) before the next Acquire, so memlock recovery always
// has idle entries to evict — the probe completes under any spec whose
// memlock ceiling admits one block.
func (n *Node) DegradationProbe() error {
	const (
		blocks     = 12
		blockBytes = 4 << 20
	)
	vas := make([]vm.VA, 0, blocks)
	for i := 0; i < blocks; i++ {
		va, err := n.Alloc.Alloc(blockBytes)
		if err != nil {
			return fmt.Errorf("node: probe alloc %d: %w", i, err)
		}
		mr, _, err := n.Cache.Acquire(va, blockBytes)
		if err != nil {
			return fmt.Errorf("node: probe register %d: %w", i, err)
		}
		if _, err := n.Cache.Release(mr); err != nil {
			return fmt.Errorf("node: probe release %d: %w", i, err)
		}
		vas = append(vas, va)
	}
	// A BSS-style mapping exercises the vm-level MapHugeOrSmall fallback
	// (distinct from the library's Figure-2 redirect): under an
	// exhausted pool it lands in small pages and counts HugeFallbacks.
	// The segment is startup-owned and never freed, as in the paper's
	// linker-script trick.
	if h, ok := n.Alloc.(*alloc.Huge); ok {
		if _, _, err := h.MapBSS(blockBytes); err != nil {
			return fmt.Errorf("node: probe bss: %w", err)
		}
	} else if _, _, err := n.AS.MapHugeOrSmall(blockBytes); err != nil {
		return fmt.Errorf("node: probe bss: %w", err)
	}
	for i, va := range vas {
		if _, err := n.Cache.Invalidate(va, blockBytes); err != nil {
			return fmt.Errorf("node: probe invalidate %d: %w", i, err)
		}
		if err := n.Alloc.Free(va); err != nil {
			return fmt.Errorf("node: probe free %d: %w", i, err)
		}
	}
	return nil
}
