package node

import (
	"encoding/json"
	"io"
	"os"

	"repro/internal/trace"
)

// Report is the shared -stats JSON schema every cmd tool emits: one
// record per workload the tool ran, carrying the per-node telemetry
// snapshots plus their cluster-wide total. Tools emit a JSON array of
// Reports ([]node.Report) so a single decoder handles all six; CI's
// golden check decodes each tool's output against exactly this type.
type Report struct {
	// Tool is the emitting command ("repro", "imbbench", ...).
	Tool string `json:"tool"`
	// Workload names what ran ("sendrecv", "cg/huge", "sge-sweep", ...).
	Workload string `json:"workload"`
	// Machine is the simulated system the workload ran on.
	Machine string `json:"machine"`
	// Faults echoes the active -faults spec ("" when disabled).
	Faults string `json:"faults,omitempty"`
	// Nodes holds one snapshot per simulated host (per MPI rank, or
	// per benchmark-rig side).
	Nodes []Stats `json:"nodes"`
	// Total is Sum(Nodes).
	Total Stats `json:"total"`
}

// NewReport assembles one Report, computing the total.
func NewReport(tool, workload, machine, faults string, nodes []Stats) Report {
	return Report{
		Tool:     tool,
		Workload: workload,
		Machine:  machine,
		Faults:   faults,
		Nodes:    nodes,
		Total:    Sum(nodes),
	}
}

// WriteReports marshals reports as indented JSON — the one rendering
// path behind every tool's -stats flag, so the bytes are comparable
// across tools and across runs.
func WriteReports(w io.Writer, reports []Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reports)
}

// WriteTraceFile renders a collector as Perfetto trace_event JSON into
// path ("-" writes to stdout) — the one rendering path behind every
// tool's -trace flag, mirroring WriteReports for -stats. The byte
// stream is canonical (trace.WritePerfetto sorts records under a total
// order), so two same-seed runs produce identical files.
func WriteTraceFile(path string, c *trace.Collector) error {
	if path == "-" {
		return c.WritePerfetto(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.WritePerfetto(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
