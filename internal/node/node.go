// Package node owns one simulated host: the machine description, its
// physical memory, a process address space with DTLB, the verbs context
// over the HCA, the allocation library, and the pin-down registration
// cache. Every layer of the stack that previously hand-rolled this wiring
// (the MPI world, the IMB and work-request benchmarks, the allocator
// comparisons, the cmd/ tools) builds its hosts here, so the paper's
// per-node cost structure — registration, ATT misses, TLB behaviour,
// allocator ticks (DESIGN.md §3) — has a single owner and a single stats
// surface (Stats).
package node

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/memtier"
	"repro/internal/phys"
	"repro/internal/policy"
	"repro/internal/regcache"
	"repro/internal/tlb"
	"repro/internal/trace"
	"repro/internal/verbs"
	"repro/internal/vm"
)

// AllocatorKind selects the node's allocation library — the variable of
// the whole experiment.
type AllocatorKind string

// Allocator kinds.
const (
	AllocLibc     AllocatorKind = "libc"
	AllocHuge     AllocatorKind = "huge"
	AllocMorecore AllocatorKind = "morecore"
	AllocPageSep  AllocatorKind = "pagesep"
)

// Scramble depths. A long-running node's frame pool is physically
// scattered; DefaultScramble reproduces that. NoScramble keeps frames in
// allocation order (unit-test setups that predate the node layer).
const (
	DefaultScramble = 4096
	NoScramble      = -1
)

// Config describes one simulated host.
type Config struct {
	Machine *machine.Machine
	// Allocator is the allocation library preloaded into the node
	// (empty means libc).
	Allocator AllocatorKind
	// LazyDereg enables the registration cache (Figure 5's two regimes).
	LazyDereg bool
	// HugeATT enables the OpenIB driver patch (2 MiB translations).
	HugeATT bool
	// ScrambleDepth warms the frame pool with this many scrambled
	// frames; 0 takes DefaultScramble, NoScramble disables warming.
	ScrambleDepth int
	// HugeConfig overrides the hugepage library's design parameters for
	// AllocHuge (nil takes alloc.DefaultHugeConfig); the §3 ablations.
	HugeConfig *alloc.HugeConfig
	// Faults enables deterministic fault injection on this host (nil =
	// no faults): hugepage-pool exhaustion/shrink, an RLIMIT_MEMLOCK
	// registration ceiling, transient completion errors, forced ATT
	// flushes. See internal/faults.
	Faults *faults.Spec
	// FaultSalt decorrelates the fault schedules of hosts sharing one
	// Spec (the MPI world salts with the rank number).
	FaultSalt uint64
	// Trace, when set, records this host's activity into the collector
	// under the timeline named TraceName (nil = no tracing; every trace
	// method is nil-safe and free when disabled).
	Trace *trace.Collector
	// TraceName labels the host's timeline in the trace ("rank0", …).
	// Empty defaults to "node".
	TraceName string
	// Policy selects the placement-policy engine ("static", "threshold",
	// "adaptive"). Empty builds no engine at all: the legacy fixed
	// strategies run with zero policy code on any path, which is what
	// keeps the committed BENCH baselines byte-identical by construction.
	Policy string
	// Tiers enables the tiered-memory model over the node's physical
	// memory (nil = flat DRAM, zero cost on every path: the pre-memtier
	// stack, which keeps the committed BENCH baselines byte-identical).
	Tiers *memtier.Config
}

func (c Config) withDefaults() Config {
	if c.Allocator == "" {
		c.Allocator = AllocLibc
	}
	if c.ScrambleDepth == 0 {
		c.ScrambleDepth = DefaultScramble
	}
	return c
}

// Validate rejects configurations New would refuse.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Machine == nil {
		return fmt.Errorf("node: config needs a machine")
	}
	switch c.Allocator {
	case AllocLibc, AllocHuge, AllocMorecore, AllocPageSep:
	default:
		return fmt.Errorf("node: unknown allocator %q", c.Allocator)
	}
	if c.Policy != "" {
		if _, err := policy.ParseKind(c.Policy); err != nil {
			return err
		}
	}
	if err := c.Tiers.Validate(); err != nil {
		return err
	}
	return nil
}

// Node is one simulated host.
type Node struct {
	cfg Config

	// Mem is the node's physical memory (frame pools).
	Mem *phys.Memory
	// AS is the process address space over Mem.
	AS *vm.AddressSpace
	// DTLB is the core's data TLB (the memmodel charges through it).
	DTLB *tlb.DTLB
	// Verbs is the verbs context; Verbs.HW is the HCA.
	Verbs *verbs.Context
	// Alloc is the preloaded allocation library.
	Alloc alloc.Allocator
	// Cache is the pin-down registration cache over Verbs.
	Cache *regcache.Cache
	// Tiers is the tiered-memory manager (nil when Config.Tiers is nil;
	// all manager methods are nil-safe and free when disabled).
	Tiers *memtier.Manager

	// inj is the node's fault injector (nil when faults are disabled).
	inj *faults.Injector
	// pol is the placement-policy engine (nil when Config.Policy is
	// empty; all engine methods are nil-safe).
	pol *policy.Engine
	// tr is the node's timeline in the trace collector (nil when tracing
	// is disabled); cur is the shared cursor the clockless layers (vm,
	// phys) stamp instant events through.
	tr  *trace.Tracer
	cur *trace.Cursor
	// coll accumulates the collective counters the MPI layer records
	// through AddColl.
	coll CollStats
}

// AddColl accumulates one collective operation's counters — the MPI
// layer records each Alltoall/Alltoallv here as it completes.
func (n *Node) AddColl(d CollStats) {
	n.coll.Alltoalls += d.Alltoalls
	n.coll.Alltoallvs += d.Alltoallvs
	n.coll.PairwiseSteps += d.PairwiseSteps
	n.coll.BytesSent += d.BytesSent
	n.coll.BytesRecv += d.BytesRecv
	n.coll.LocalCopyBytes += d.LocalCopyBytes
}

// New builds a host from a configuration. This is the single place the
// stack is wired together: physical memory (warmed), address space, DTLB,
// verbs context with the ATT patch flag, allocation library, registration
// cache.
func New(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mem := phys.NewMemory(cfg.Machine)
	if cfg.ScrambleDepth > 0 {
		// Warm the frame pool so small-page buffers are physically
		// scattered, as on a real long-running node.
		mem.Scramble(cfg.ScrambleDepth)
	}
	inj := faults.New(cfg.Faults, cfg.FaultSalt)
	if inj != nil {
		// Attach before the allocator is built so a pool cap applies to
		// every hugepage the library ever sees.
		mem.SetFaults(inj)
	}
	var tr *trace.Tracer
	var cur *trace.Cursor
	if cfg.Trace != nil {
		name := cfg.TraceName
		if name == "" {
			name = "node"
		}
		tr = cfg.Trace.Tracer(name)
		cur = tr.Cursor(trace.TrackMain)
		mem.SetTrace(cur)
	}
	as := vm.New(mem)
	if cur != nil {
		as.SetTrace(cur)
	}
	ctx := verbs.Open(cfg.Machine, as)
	ctx.HugeATT = cfg.HugeATT
	ctx.MemlockLimit = inj.MemlockLimit()
	if inj != nil {
		ctx.HW.SetFaults(inj)
	}
	a, err := newAllocator(as, cfg)
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:   cfg,
		Mem:   mem,
		AS:    as,
		DTLB:  tlb.New(&cfg.Machine.CPU),
		Verbs: ctx,
		Alloc: a,
		Cache: regcache.New(ctx, cfg.LazyDereg),
		inj:   inj,
		tr:    tr,
		cur:   cur,
	}
	if cfg.Policy != "" {
		kind, err := policy.ParseKind(cfg.Policy)
		if err != nil {
			return nil, err
		}
		eng, err := policy.New(policy.Config{
			Kind:         kind,
			Machine:      cfg.Machine,
			LazyDefault:  cfg.LazyDereg,
			AS:           as,
			DTLB:         n.DTLB,
			Mem:          mem,
			MemlockLimit: inj.MemlockLimit(),
			ATTStats: func() (int64, int64) {
				s := ctx.HW.Stats()
				return s.ATTHits, s.ATTMisses
			},
			CacheStats: func() (int64, int64) {
				s := n.Cache.Stats()
				return s.Hits, s.Misses
			},
			Trace: cur,
		})
		if err != nil {
			return nil, err
		}
		n.pol = eng
		if h, ok := a.(*alloc.Huge); ok {
			h.SetPlacer(eng)
		}
		n.Cache.SetPolicy(eng)
	}
	if cfg.Tiers != nil {
		tc := *cfg.Tiers
		if tc.MigrateBandwidthMBs <= 0 {
			tc.MigrateBandwidthMBs = cfg.Machine.Mem.CopyBandwidthMBs
		}
		mt, err := memtier.New(&tc, cur)
		if err != nil {
			return nil, err
		}
		n.Tiers = mt
	}
	return n, nil
}

// NewAllocator builds one of the four allocation-library models on an
// existing address space — the one allocator-kind switch of the codebase.
func NewAllocator(as *vm.AddressSpace, m *machine.Machine, kind AllocatorKind) (alloc.Allocator, error) {
	return newAllocator(as, Config{Machine: m, Allocator: kind}.withDefaults())
}

func newAllocator(as *vm.AddressSpace, cfg Config) (alloc.Allocator, error) {
	ticks := cfg.Machine.Mem.SyscallTicks
	switch cfg.Allocator {
	case AllocLibc:
		return alloc.NewLibc(as, ticks), nil
	case AllocHuge:
		hc := alloc.DefaultHugeConfig()
		if cfg.HugeConfig != nil {
			hc = *cfg.HugeConfig
		}
		return alloc.NewHuge(as, ticks, hc)
	case AllocMorecore:
		return alloc.NewMorecore(as, ticks), nil
	case AllocPageSep:
		return alloc.NewPageSep(as, ticks), nil
	}
	return nil, fmt.Errorf("node: unknown allocator %q", cfg.Allocator)
}

// Config returns the node's configuration (defaults resolved).
func (n *Node) Config() Config { return n.cfg }

// Faults returns the node's fault injector (nil when faults are
// disabled; all injector methods are nil-safe).
func (n *Node) Faults() *faults.Injector { return n.inj }

// Policy returns the node's placement-policy engine (nil when
// Config.Policy is empty; all engine methods are nil-safe).
func (n *Node) Policy() *policy.Engine { return n.pol }

// Machine returns the node's machine description.
func (n *Node) Machine() *machine.Machine { return n.cfg.Machine }

// Tracer returns the node's trace timeline (nil when tracing is
// disabled; all tracer methods are nil-safe).
func (n *Node) Tracer() *trace.Tracer { return n.tr }

// TraceCursor returns the cursor the node's clockless layers stamp
// instant events through (nil when tracing is disabled). Owners with a
// clock should Set it before entering the allocation or mapping layers.
func (n *Node) TraceCursor() *trace.Cursor { return n.cur }
