package node_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/machine"
	"repro/internal/node"
)

func probeNode(t *testing.T, specStr string) *node.Node {
	t.Helper()
	spec, err := faults.ParseSpec(specStr)
	if err != nil {
		t.Fatal(err)
	}
	n, err := node.New(node.Config{
		Machine:   machine.Opteron(),
		Allocator: node.AllocHuge,
		LazyDereg: true,
		Faults:    spec,
		FaultSalt: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestDegradationProbeSurfacesPressure(t *testing.T) {
	n := probeNode(t, "seed=7,hugecap=8,memlock=16m")
	if err := n.DegradationProbe(); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.Alloc.FallbackToSmall == 0 || st.Alloc.FallbackBytes == 0 {
		t.Fatalf("capped pool should redirect library allocations: %+v", st.Alloc)
	}
	if st.Mem.HugeFallbacks == 0 || st.Mem.HugeFallbackBytes == 0 {
		t.Fatalf("BSS mapping should take the vm-level fallback: %+v", st.Mem)
	}
	if st.Faults.MemlockRetries == 0 || st.Faults.MemlockEvictions == 0 {
		t.Fatalf("memlock ceiling never tripped evict-and-retry: %+v", st.Faults)
	}
	if st.Faults.PoolPagesRemoved == 0 {
		t.Fatalf("pool cap removed no pages: %+v", st.Faults)
	}
	if st.Faults.MemlockLimit != 16<<20 || st.Faults.Spec == "" {
		t.Fatalf("fault identity not echoed: %+v", st.Faults)
	}
}

func TestDegradationProbeIsDeterministic(t *testing.T) {
	run := func() node.Stats {
		n := probeNode(t, "seed=7,hugecap=8,hugefail=40,shrink=100:2,memlock=16m,attevict=400")
		if err := n.DegradationProbe(); err != nil {
			t.Fatal(err)
		}
		return n.Stats()
	}
	st1, st2 := run(), run()
	if !reflect.DeepEqual(st1, st2) {
		t.Fatalf("same-seed probes diverge:\n%+v\n%+v", st1, st2)
	}
}

func TestDegradationProbeCleanWithoutFaults(t *testing.T) {
	n := probeNode(t, "")
	if err := n.DegradationProbe(); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.Faults != (node.FaultStats{}) {
		t.Fatalf("clean probe reported fault activity: %+v", st.Faults)
	}
	if st.Alloc.FallbackToSmall != 0 {
		t.Fatalf("clean probe fell back: %+v", st.Alloc)
	}
}

// TestReportSchemaIsClosed is the authoritative check behind CI's golden
// step: every tool's -stats output must decode against []node.Report
// with no unknown fields in either direction.
func TestReportSchemaIsClosed(t *testing.T) {
	n := probeNode(t, "seed=7,hugecap=8,memlock=16m")
	if err := n.DegradationProbe(); err != nil {
		t.Fatal(err)
	}
	reports := []node.Report{
		node.NewReport("test", "probe", "opteron", "seed=7", []node.Stats{n.Stats()}),
	}
	var buf bytes.Buffer
	if err := node.WriteReports(&buf, reports); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	var back []node.Report
	if err := dec.Decode(&back); err != nil {
		t.Fatalf("emitted JSON does not round-trip the schema: %v", err)
	}
	if !reflect.DeepEqual(reports, back) {
		t.Fatal("decode lost data")
	}
	// The per-node documents key every layer, faults included.
	var doc []map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var nodes []map[string]json.RawMessage
	if err := json.Unmarshal(doc[0]["nodes"], &nodes); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"machine", "allocator", "tlb", "hca", "reg", "regcache", "alloc", "mem", "faults"} {
		if _, ok := nodes[0][key]; !ok {
			t.Fatalf("node stats JSON missing %q section", key)
		}
	}
}
