package node_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/hca"
	"repro/internal/machine"
	"repro/internal/node"
	"repro/internal/vm"
)

func TestConfigValidation(t *testing.T) {
	if err := (node.Config{}).Validate(); err == nil {
		t.Fatal("nil machine accepted")
	}
	if _, err := node.New(node.Config{}); err == nil {
		t.Fatal("New built a host without a machine")
	}
	bad := node.Config{Machine: machine.Opteron(), Allocator: "tcmalloc"}
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown allocator accepted")
	}
	if _, err := node.New(bad); err == nil {
		t.Fatal("New built a host with an unknown allocator")
	}
	ok := node.Config{Machine: machine.Opteron(), Allocator: node.AllocHuge}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultsResolved(t *testing.T) {
	n, err := node.New(node.Config{Machine: machine.Opteron()})
	if err != nil {
		t.Fatal(err)
	}
	cfg := n.Config()
	if cfg.Allocator != node.AllocLibc {
		t.Fatalf("default allocator = %q, want libc", cfg.Allocator)
	}
	if cfg.ScrambleDepth != node.DefaultScramble {
		t.Fatalf("default scramble depth = %d, want %d", cfg.ScrambleDepth, node.DefaultScramble)
	}
	n2, err := node.New(node.Config{Machine: machine.Opteron(), ScrambleDepth: node.NoScramble})
	if err != nil {
		t.Fatal(err)
	}
	if n2.Config().ScrambleDepth != node.NoScramble {
		t.Fatal("NoScramble not preserved")
	}
	if n.Machine().Name != machine.Opteron().Name {
		t.Fatal("Machine accessor wrong")
	}
}

func TestNewAllocatorKinds(t *testing.T) {
	for _, kind := range []node.AllocatorKind{
		node.AllocLibc, node.AllocHuge, node.AllocMorecore, node.AllocPageSep,
	} {
		n, err := node.New(node.Config{Machine: machine.SystemP(), Allocator: kind})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		a, err := node.NewAllocator(n.AS, n.Machine(), kind)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		va, err := a.Alloc(100 << 10)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if err := a.Free(va); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
	n, _ := node.New(node.Config{Machine: machine.Opteron()})
	if _, err := node.NewAllocator(n.AS, n.Machine(), "tcmalloc"); err == nil {
		t.Fatal("unknown allocator kind accepted")
	}
}

// script drives every layer of a host once: three allocations, a
// lazy-cached registration (miss, hit), a DMA gather/scatter pair, and a
// page-walk sweep. It returns the buffer addresses it placed.
func script(t *testing.T, n *node.Node) []vm.VA {
	t.Helper()
	var vas []vm.VA
	for _, sz := range []uint64{40 << 10, 256 << 10, 1 << 20} {
		va, err := n.Alloc.Alloc(sz)
		if err != nil {
			t.Fatal(err)
		}
		vas = append(vas, va)
	}
	mr, _, err := n.Cache.Acquire(vas[2], 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Cache.Release(mr); err != nil {
		t.Fatal(err)
	}
	mr2, _, err := n.Cache.Acquire(vas[2], 1<<20) // lazy: cache hit
	if err != nil {
		t.Fatal(err)
	}
	data, _, err := n.Verbs.HW.Gather([]hca.SGE{{Addr: vas[2], Length: 64 << 10, LKey: mr2.LKey}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Verbs.HW.Scatter([]hca.SGE{{Addr: vas[2] + 64<<10, Length: 64 << 10, LKey: mr2.LKey}}, data); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Cache.Release(mr2); err != nil {
		t.Fatal(err)
	}
	for off := uint64(0); off < 1<<20; off += 4096 {
		n.DTLB.Access(vas[2]+vm.VA(off), vm.Huge)
	}
	if err := n.Alloc.Free(vas[0]); err != nil {
		t.Fatal(err)
	}
	return vas
}

func telemetryConfig(m *machine.Machine) node.Config {
	return node.Config{
		Machine:   m,
		Allocator: node.AllocHuge,
		LazyDereg: true,
		HugeATT:   true,
	}
}

func TestStatsAggregationMatchesLayers(t *testing.T) {
	n, err := node.New(telemetryConfig(machine.Opteron()))
	if err != nil {
		t.Fatal(err)
	}
	script(t, n)
	st := n.Stats()

	if st.Machine != machine.Opteron().Name || st.Allocator != "huge" {
		t.Fatalf("identity wrong: %q %q", st.Machine, st.Allocator)
	}
	small, large := n.DTLB.Small.Stats(), n.DTLB.Large.Stats()
	wantTLB := node.TLBStats{
		Hits4K: small.Hits, Misses4K: small.Misses,
		Hits2M: large.Hits, Misses2M: large.Misses,
	}
	if st.TLB != wantTLB {
		t.Fatalf("TLB stats %+v, want %+v", st.TLB, wantTLB)
	}
	if st.TLB.Hits2M+st.TLB.Misses2M == 0 {
		t.Fatal("page-walk sweep left no TLB telemetry")
	}
	hw := n.Verbs.HW.Stats()
	if st.HCA.ATTHits != hw.ATTHits || st.HCA.ATTMisses != hw.ATTMisses ||
		st.HCA.BytesGather != hw.BytesGather || st.HCA.BytesScatter != hw.BytesScatter {
		t.Fatalf("HCA stats %+v do not match the adapter %+v", st.HCA, hw)
	}
	if st.HCA.BusBytes != hw.BytesGather+hw.BytesScatter || st.HCA.BusBytes != 2*(64<<10) {
		t.Fatalf("bus bytes %d, want %d", st.HCA.BusBytes, 2*(64<<10))
	}
	reg := n.Verbs.Stats()
	if st.Reg.Registrations != reg.Registrations || st.Reg.RegTicks != reg.RegTicks ||
		st.Reg.PagesPinned != reg.PagesPinned {
		t.Fatalf("reg stats %+v do not match verbs %+v", st.Reg, reg)
	}
	if st.Reg.Registrations == 0 {
		t.Fatal("no registration recorded")
	}
	rc := n.Cache.Stats()
	if st.Cache.Hits != rc.Hits || st.Cache.Misses != rc.Misses {
		t.Fatalf("cache stats %+v do not match regcache %+v", st.Cache, rc)
	}
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Fatalf("cache hits/misses = %d/%d, want 1/1", st.Cache.Hits, st.Cache.Misses)
	}
	al := n.Alloc.Stats()
	if st.Alloc.Allocs != al.Allocs || st.Alloc.Frees != al.Frees || st.Alloc.Ticks != al.Ticks {
		t.Fatalf("alloc stats %+v do not match allocator %+v", st.Alloc, al)
	}
	if st.Alloc.Allocs != 3 || st.Alloc.Frees != 1 {
		t.Fatalf("alloc ops %d/%d, want 3/1", st.Alloc.Allocs, st.Alloc.Frees)
	}
	if st.Mem.MappedHuge != n.AS.Stats().MappedHuge || st.Mem.MappedHuge == 0 {
		t.Fatalf("mapped-huge gauge %d inconsistent", st.Mem.MappedHuge)
	}
	if st.Mem.HugePagesUsed != int64(n.Mem.Stats().HugeAllocated) {
		t.Fatal("hugepage-pool gauge inconsistent")
	}
}

func TestDeterministicRebuild(t *testing.T) {
	// Same config (including the default scrambled frame pool) must give
	// two hosts with identical placement and identical telemetry after an
	// identical operation sequence.
	run := func() (node.Stats, []vm.VA) {
		n, err := node.New(telemetryConfig(machine.Opteron()))
		if err != nil {
			t.Fatal(err)
		}
		vas := script(t, n)
		return n.Stats(), vas
	}
	st1, vas1 := run()
	st2, vas2 := run()
	if !reflect.DeepEqual(vas1, vas2) {
		t.Fatalf("placement differs across rebuilds: %v vs %v", vas1, vas2)
	}
	if !reflect.DeepEqual(st1, st2) {
		t.Fatalf("telemetry differs across rebuilds:\n%+v\n%+v", st1, st2)
	}
}

func TestStatsSum(t *testing.T) {
	n, err := node.New(telemetryConfig(machine.Opteron()))
	if err != nil {
		t.Fatal(err)
	}
	script(t, n)
	st := n.Stats()
	total := node.Sum([]node.Stats{st, st})
	if total.Machine != st.Machine || total.Allocator != st.Allocator {
		t.Fatal("Sum lost the identity of the first snapshot")
	}
	if total.Cache.Misses != 2*st.Cache.Misses ||
		total.Reg.Registrations != 2*st.Reg.Registrations ||
		total.TLB.Misses2M != 2*st.TLB.Misses2M ||
		total.HCA.BusBytes != 2*st.HCA.BusBytes ||
		total.Alloc.Ticks != 2*st.Alloc.Ticks {
		t.Fatalf("Sum did not double the counters: %+v", total)
	}
	if zero := node.Sum(nil); !reflect.DeepEqual(zero, node.Stats{}) {
		t.Fatal("Sum(nil) not zero")
	}
}

func TestSumTakesMaxOfPeakGauges(t *testing.T) {
	// Two nodes whose peaks never coexisted: node A peaked at 100 while
	// node B sat at 40, then A dropped before B climbed to 60. The
	// cluster-wide peak is 100 (max), not 160 (sum).
	var a, b node.Stats
	a.Cache.PeakPinned, b.Cache.PeakPinned = 100, 60
	a.Alloc.PeakLive, b.Alloc.PeakLive = 1<<20, 3<<20
	a.Mem.HugePagesPeak, b.Mem.HugePagesPeak = 7, 5
	a.Cache.PinnedBytes, b.Cache.PinnedBytes = 10, 20

	total := node.Sum([]node.Stats{a, b})
	if got, want := total.Cache.PeakPinned, int64(100); got != want {
		t.Errorf("Cache.PeakPinned = %d, want max %d", got, want)
	}
	if got, want := total.Alloc.PeakLive, int64(3<<20); got != want {
		t.Errorf("Alloc.PeakLive = %d, want max %d", got, want)
	}
	if got, want := total.Mem.HugePagesPeak, int64(7); got != want {
		t.Errorf("Mem.HugePagesPeak = %d, want max %d", got, want)
	}
	// Live gauges still sum: simultaneous snapshots do coexist.
	if got, want := total.Cache.PinnedBytes, int64(30); got != want {
		t.Errorf("Cache.PinnedBytes = %d, want sum %d", got, want)
	}
}

func TestStatsJSONRoundTrip(t *testing.T) {
	n, err := node.New(telemetryConfig(machine.Opteron()))
	if err != nil {
		t.Fatal(err)
	}
	script(t, n)
	st := n.Stats()
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back node.Stats
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, back) {
		t.Fatalf("JSON round trip lost data:\n%+v\n%+v", st, back)
	}
	// The documents the -stats flags emit key the layers by name.
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"machine", "allocator", "tlb", "hca", "reg", "regcache", "alloc", "mem"} {
		if _, ok := doc[key]; !ok {
			t.Fatalf("stats JSON missing %q section", key)
		}
	}
}
