package node

import (
	"repro/internal/simtime"
)

// Stats is one snapshot of every layer's counters on a node — the single
// telemetry surface of the simulated host. All fields are cumulative
// since node construction, except the gauges noted. It marshals to JSON
// for the -stats flags of the cmd/ tools.
type Stats struct {
	Machine   string `json:"machine"`
	Allocator string `json:"allocator"`

	TLB   TLBStats   `json:"tlb"`
	HCA   HCAStats   `json:"hca"`
	Reg   RegStats   `json:"reg"`
	Cache CacheStats `json:"regcache"`
	Alloc AllocStats `json:"alloc"`
	Mem   MemStats   `json:"mem"`
}

// TLBStats is the data-TLB split by page size.
type TLBStats struct {
	Hits4K   int64 `json:"hits_4k"`
	Misses4K int64 `json:"misses_4k"`
	Hits2M   int64 `json:"hits_2m"`
	Misses2M int64 `json:"misses_2m"`
}

// HCAStats covers the adapter: translation cache, work requests, and the
// bytes its DMA engines moved over the IO bus.
type HCAStats struct {
	ATTHits      int64 `json:"att_hits"`
	ATTMisses    int64 `json:"att_misses"`
	MTTEntries   int64 `json:"mtt_entries"` // gauge: currently installed
	PostedWRs    int64 `json:"posted_wrs"`
	CQEs         int64 `json:"cqes"`
	BytesGather  int64 `json:"bytes_gather"`
	BytesScatter int64 `json:"bytes_scatter"`
	BusBytes     int64 `json:"bus_bytes"` // gather + scatter
}

// RegStats covers verbs-level memory registration.
type RegStats struct {
	Registrations   int64         `json:"registrations"`
	Deregistrations int64         `json:"deregistrations"`
	RegTicks        simtime.Ticks `json:"reg_ticks"`
	DeregTicks      simtime.Ticks `json:"dereg_ticks"`
	PagesPinned     int64         `json:"pages_pinned"`
}

// CacheStats covers the pin-down registration cache.
type CacheStats struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Evictions   int64 `json:"evictions"`
	PinnedBytes int64 `json:"pinned_bytes"` // gauge
	PeakPinned  int64 `json:"peak_pinned"`
}

// AllocStats covers the allocation library.
type AllocStats struct {
	Allocs     int64         `json:"allocs"`
	Frees      int64         `json:"frees"`
	Ticks      simtime.Ticks `json:"ticks"`
	Syscalls   int64         `json:"syscalls"`
	HugeBytes  int64         `json:"huge_bytes"`  // gauge
	SmallBytes int64         `json:"small_bytes"` // gauge
	LiveBytes  int64         `json:"live_bytes"`  // gauge
	PeakLive   int64         `json:"peak_live"`
}

// MemStats covers physical memory and the address space: the
// hugepage-pool usage behind the paper's "less available physical
// memory" drawback.
type MemStats struct {
	HugePagesUsed int64 `json:"huge_pages_used"` // gauge
	HugePagesPeak int64 `json:"huge_pages_peak"`
	HugeFailures  int64 `json:"huge_failures"`
	MappedSmall   int64 `json:"mapped_small"` // gauge
	MappedHuge    int64 `json:"mapped_huge"`  // gauge
	HugeFallbacks int64 `json:"huge_fallbacks"`
}

// Stats snapshots every layer of the node.
func (n *Node) Stats() Stats {
	small := n.DTLB.Small.Stats()
	large := n.DTLB.Large.Stats()
	hw := n.Verbs.HW.Stats()
	reg := n.Verbs.Stats()
	rc := n.Cache.Stats()
	al := n.Alloc.Stats()
	pm := n.Mem.Stats()
	as := n.AS.Stats()
	return Stats{
		Machine:   n.cfg.Machine.Name,
		Allocator: string(n.cfg.Allocator),
		TLB: TLBStats{
			Hits4K:   small.Hits,
			Misses4K: small.Misses,
			Hits2M:   large.Hits,
			Misses2M: large.Misses,
		},
		HCA: HCAStats{
			ATTHits:      hw.ATTHits,
			ATTMisses:    hw.ATTMisses,
			MTTEntries:   hw.MTTEntries,
			PostedWRs:    hw.PostedWRs,
			CQEs:         hw.CQEs,
			BytesGather:  hw.BytesGather,
			BytesScatter: hw.BytesScatter,
			BusBytes:     hw.BytesGather + hw.BytesScatter,
		},
		Reg: RegStats{
			Registrations:   reg.Registrations,
			Deregistrations: reg.Deregistrations,
			RegTicks:        reg.RegTicks,
			DeregTicks:      reg.DeregTicks,
			PagesPinned:     reg.PagesPinned,
		},
		Cache: CacheStats{
			Hits:        rc.Hits,
			Misses:      rc.Misses,
			Evictions:   rc.Evictions,
			PinnedBytes: rc.PinnedBytes,
			PeakPinned:  rc.PeakPinned,
		},
		Alloc: AllocStats{
			Allocs:     al.Allocs,
			Frees:      al.Frees,
			Ticks:      al.Ticks,
			Syscalls:   al.Syscalls,
			HugeBytes:  al.HugeBytes,
			SmallBytes: al.SmallBytes,
			LiveBytes:  al.LiveBytes,
			PeakLive:   al.PeakLive,
		},
		Mem: MemStats{
			HugePagesUsed: int64(pm.HugeAllocated),
			HugePagesPeak: int64(pm.HugePeak),
			HugeFailures:  pm.HugeFailures,
			MappedSmall:   as.MappedSmall,
			MappedHuge:    as.MappedHuge,
			HugeFallbacks: as.HugeFallbacks,
		},
	}
}

// Add accumulates other's counters into s (gauges add too, which reads
// as a cluster-wide total). The identity strings keep s's values.
func (s *Stats) Add(other Stats) {
	s.TLB.Hits4K += other.TLB.Hits4K
	s.TLB.Misses4K += other.TLB.Misses4K
	s.TLB.Hits2M += other.TLB.Hits2M
	s.TLB.Misses2M += other.TLB.Misses2M
	s.HCA.ATTHits += other.HCA.ATTHits
	s.HCA.ATTMisses += other.HCA.ATTMisses
	s.HCA.MTTEntries += other.HCA.MTTEntries
	s.HCA.PostedWRs += other.HCA.PostedWRs
	s.HCA.CQEs += other.HCA.CQEs
	s.HCA.BytesGather += other.HCA.BytesGather
	s.HCA.BytesScatter += other.HCA.BytesScatter
	s.HCA.BusBytes += other.HCA.BusBytes
	s.Reg.Registrations += other.Reg.Registrations
	s.Reg.Deregistrations += other.Reg.Deregistrations
	s.Reg.RegTicks += other.Reg.RegTicks
	s.Reg.DeregTicks += other.Reg.DeregTicks
	s.Reg.PagesPinned += other.Reg.PagesPinned
	s.Cache.Hits += other.Cache.Hits
	s.Cache.Misses += other.Cache.Misses
	s.Cache.Evictions += other.Cache.Evictions
	s.Cache.PinnedBytes += other.Cache.PinnedBytes
	s.Cache.PeakPinned += other.Cache.PeakPinned
	s.Alloc.Allocs += other.Alloc.Allocs
	s.Alloc.Frees += other.Alloc.Frees
	s.Alloc.Ticks += other.Alloc.Ticks
	s.Alloc.Syscalls += other.Alloc.Syscalls
	s.Alloc.HugeBytes += other.Alloc.HugeBytes
	s.Alloc.SmallBytes += other.Alloc.SmallBytes
	s.Alloc.LiveBytes += other.Alloc.LiveBytes
	s.Alloc.PeakLive += other.Alloc.PeakLive
	s.Mem.HugePagesUsed += other.Mem.HugePagesUsed
	s.Mem.HugePagesPeak += other.Mem.HugePagesPeak
	s.Mem.HugeFailures += other.Mem.HugeFailures
	s.Mem.MappedSmall += other.Mem.MappedSmall
	s.Mem.MappedHuge += other.Mem.MappedHuge
	s.Mem.HugeFallbacks += other.Mem.HugeFallbacks
}

// Sum totals a set of per-node snapshots (empty input gives zero Stats).
func Sum(all []Stats) Stats {
	var out Stats
	for i, s := range all {
		if i == 0 {
			out.Machine = s.Machine
			out.Allocator = s.Allocator
		}
		out.Add(s)
	}
	return out
}
