package node

import (
	"repro/internal/memtier"
	"repro/internal/simtime"
)

// Stats is one snapshot of every layer's counters on a node — the single
// telemetry surface of the simulated host. All fields are cumulative
// since node construction, except the gauges noted. It marshals to JSON
// for the -stats flags of the cmd/ tools.
type Stats struct {
	Machine   string `json:"machine"`
	Allocator string `json:"allocator"`

	TLB     TLBStats     `json:"tlb"`
	HCA     HCAStats     `json:"hca"`
	Reg     RegStats     `json:"reg"`
	Cache   CacheStats   `json:"regcache"`
	Alloc   AllocStats   `json:"alloc"`
	Mem     MemStats     `json:"mem"`
	Faults  FaultStats   `json:"faults"`
	Policy  PolicyStats  `json:"policy"`
	Memtier MemtierStats `json:"memtier"`
	Coll    CollStats    `json:"coll"`
}

// TierStat is one memory tier's counter set within MemtierStats. A
// capacity of 0 means unbounded.
type TierStat struct {
	Name          string        `json:"name,omitempty"`
	CapacityBytes int64         `json:"capacity_bytes"`
	UsedBytes     int64         `json:"used_bytes"` // gauge
	PeakBytes     int64         `json:"peak_bytes"`
	Assigns       int64         `json:"assigns"`
	Spills        int64         `json:"spills"`
	TouchTicks    simtime.Ticks `json:"touch_ticks"`
}

// MemtierStats surfaces the internal/memtier manager's counters. The
// Stats surface keeps the canonical fast/slow split so the struct stays
// comparable (statscheck compares totals with ==): Fast is tier 0 and
// Slow aggregates every slower tier — exact for the standard two-tier
// stack. All zeros when tiering is disabled.
type MemtierStats struct {
	Fast          TierStat      `json:"fast"`
	Slow          TierStat      `json:"slow"`
	Promotions    int64         `json:"promotions"`
	Demotions     int64         `json:"demotions"`
	MigratedBytes int64         `json:"migrated_bytes"`
	MigrateTicks  simtime.Ticks `json:"migrate_ticks"`
}

// CollStats counts the scheduler-native all-to-all collectives: how
// many completed on this rank, the pairwise exchange steps they ran,
// and the bytes they moved (local self-block copies counted
// separately from wire traffic).
type CollStats struct {
	Alltoalls      int64 `json:"alltoalls"`
	Alltoallvs     int64 `json:"alltoallvs"`
	PairwiseSteps  int64 `json:"pairwise_steps"`
	BytesSent      int64 `json:"bytes_sent"`
	BytesRecv      int64 `json:"bytes_recv"`
	LocalCopyBytes int64 `json:"local_copy_bytes"`
}

// PolicyStats counts the placement-policy engine's decisions at its
// three hook points, plus the adaptive policy's windowed demotions. All
// zeros (and Kind empty) when no policy engine is configured.
type PolicyStats struct {
	Kind            string        `json:"kind,omitempty"`
	PlaceHuge       int64         `json:"place_huge"`
	PlaceSmall      int64         `json:"place_small"`
	CacheLazy       int64         `json:"cache_lazy"`
	CacheEager      int64         `json:"cache_eager"`
	SGEGather       int64         `json:"sge_gather"`
	SGEPack         int64         `json:"sge_pack"`
	Windows         int64         `json:"windows"`
	DemoteDecisions int64         `json:"demote_decisions"`
	DemotedPages    int64         `json:"demoted_pages"`
	DemotedBytes    int64         `json:"demoted_bytes"`
	DemoteTicks     simtime.Ticks `json:"demote_ticks"`
	TierMigrates    int64         `json:"tier_migrates"`
	TierRecomputes  int64         `json:"tier_recomputes"`
}

// TLBStats is the data-TLB split by page size.
type TLBStats struct {
	Hits4K   int64 `json:"hits_4k"`
	Misses4K int64 `json:"misses_4k"`
	Hits2M   int64 `json:"hits_2m"`
	Misses2M int64 `json:"misses_2m"`
}

// HCAStats covers the adapter: translation cache, work requests, and the
// bytes its DMA engines moved over the IO bus.
type HCAStats struct {
	ATTHits      int64 `json:"att_hits"`
	ATTMisses    int64 `json:"att_misses"`
	MTTEntries   int64 `json:"mtt_entries"` // gauge: currently installed
	PostedWRs    int64 `json:"posted_wrs"`
	CQEs         int64 `json:"cqes"`
	BytesGather  int64 `json:"bytes_gather"`
	BytesScatter int64 `json:"bytes_scatter"`
	BusBytes     int64 `json:"bus_bytes"` // gather + scatter
}

// RegStats covers verbs-level memory registration.
type RegStats struct {
	Registrations   int64         `json:"registrations"`
	Deregistrations int64         `json:"deregistrations"`
	RegTicks        simtime.Ticks `json:"reg_ticks"`
	DeregTicks      simtime.Ticks `json:"dereg_ticks"`
	PagesPinned     int64         `json:"pages_pinned"` // gauge: pages currently pinned
	PinnedBytes     int64         `json:"pinned_bytes"` // gauge: what RLIMIT_MEMLOCK meters
}

// CacheStats covers the pin-down registration cache.
type CacheStats struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Evictions   int64 `json:"evictions"`
	PinnedBytes int64 `json:"pinned_bytes"` // gauge
	PeakPinned  int64 `json:"peak_pinned"`
}

// AllocStats covers the allocation library.
type AllocStats struct {
	Allocs     int64         `json:"allocs"`
	Frees      int64         `json:"frees"`
	Ticks      simtime.Ticks `json:"ticks"`
	Syscalls   int64         `json:"syscalls"`
	HugeBytes  int64         `json:"huge_bytes"`  // gauge
	SmallBytes int64         `json:"small_bytes"` // gauge
	LiveBytes  int64         `json:"live_bytes"`  // gauge
	PeakLive   int64         `json:"peak_live"`
	// FallbackToSmall counts hugepage-library requests the Figure 2
	// decision redirected to libc because the pool ran dry;
	// FallbackBytes is their cumulative size.
	FallbackToSmall int64 `json:"fallback_to_small"`
	FallbackBytes   int64 `json:"fallback_bytes"`
}

// MemStats covers physical memory and the address space: the
// hugepage-pool usage behind the paper's "less available physical
// memory" drawback.
type MemStats struct {
	HugePagesUsed     int64 `json:"huge_pages_used"` // gauge
	HugePagesPeak     int64 `json:"huge_pages_peak"`
	HugeFailures      int64 `json:"huge_failures"`
	MappedSmall       int64 `json:"mapped_small"` // gauge
	MappedHuge        int64 `json:"mapped_huge"`  // gauge
	HugeFallbacks     int64 `json:"huge_fallbacks"`
	HugeFallbackBytes int64 `json:"huge_fallback_bytes"`
}

// FaultStats aggregates every injected fault and every recovery the
// stack performed — the "behavior under pressure" record. With no fault
// spec it is all zeros (and Spec is empty).
type FaultStats struct {
	// Spec echoes the active fault configuration in -faults syntax.
	Spec string `json:"spec,omitempty"`
	// InjectedHugeFails / PoolPagesRemoved: hugepage-pool pressure
	// (spurious allocation refusals; pages dropped by cap + shrink).
	InjectedHugeFails int64 `json:"injected_huge_fails"`
	PoolPagesRemoved  int64 `json:"pool_pages_removed"`
	// Memlock ceiling: refused registrations, and the pin-down cache's
	// evict-and-retry recoveries.
	MemlockLimit      int64 `json:"memlock_limit,omitempty"`
	MemlockRejections int64 `json:"memlock_rejections"`
	MemlockRetries    int64 `json:"memlock_retries"`
	MemlockEvictions  int64 `json:"memlock_evictions"`
	// Transient completion errors injected and the MPI layer's reposts.
	WRErrors  int64 `json:"wr_errors"`
	WRRetries int64 `json:"wr_retries"`
	// Cached HCA translations dropped by injected forced eviction.
	ATTEvictions int64 `json:"att_evictions"`
}

// Stats snapshots every layer of the node.
func (n *Node) Stats() Stats {
	small := n.DTLB.Small.Stats()
	large := n.DTLB.Large.Stats()
	hw := n.Verbs.HW.Stats()
	reg := n.Verbs.Stats()
	rc := n.Cache.Stats()
	al := n.Alloc.Stats()
	pm := n.Mem.Stats()
	as := n.AS.Stats()
	fj := n.inj.Stats()
	ps := n.pol.Stats()
	return Stats{
		Machine:   n.cfg.Machine.Name,
		Allocator: string(n.cfg.Allocator),
		TLB: TLBStats{
			Hits4K:   small.Hits,
			Misses4K: small.Misses,
			Hits2M:   large.Hits,
			Misses2M: large.Misses,
		},
		HCA: HCAStats{
			ATTHits:      hw.ATTHits,
			ATTMisses:    hw.ATTMisses,
			MTTEntries:   hw.MTTEntries,
			PostedWRs:    hw.PostedWRs,
			CQEs:         hw.CQEs,
			BytesGather:  hw.BytesGather,
			BytesScatter: hw.BytesScatter,
			BusBytes:     hw.BytesGather + hw.BytesScatter,
		},
		Reg: RegStats{
			Registrations:   reg.Registrations,
			Deregistrations: reg.Deregistrations,
			RegTicks:        reg.RegTicks,
			DeregTicks:      reg.DeregTicks,
			PagesPinned:     reg.PagesPinned,
			PinnedBytes:     reg.PinnedBytes,
		},
		Cache: CacheStats{
			Hits:        rc.Hits,
			Misses:      rc.Misses,
			Evictions:   rc.Evictions,
			PinnedBytes: rc.PinnedBytes,
			PeakPinned:  rc.PeakPinned,
		},
		Alloc: AllocStats{
			Allocs:          al.Allocs,
			Frees:           al.Frees,
			Ticks:           al.Ticks,
			Syscalls:        al.Syscalls,
			HugeBytes:       al.HugeBytes,
			SmallBytes:      al.SmallBytes,
			LiveBytes:       al.LiveBytes,
			PeakLive:        al.PeakLive,
			FallbackToSmall: al.FallbackToSmall,
			FallbackBytes:   al.FallbackBytes,
		},
		Mem: MemStats{
			HugePagesUsed:     int64(pm.HugeAllocated),
			HugePagesPeak:     int64(pm.HugePeak),
			HugeFailures:      pm.HugeFailures,
			MappedSmall:       as.MappedSmall,
			MappedHuge:        as.MappedHuge,
			HugeFallbacks:     as.HugeFallbacks,
			HugeFallbackBytes: as.HugeFallbackBytes,
		},
		Faults: FaultStats{
			Spec:              n.inj.Spec().String(),
			InjectedHugeFails: pm.HugeInjected,
			PoolPagesRemoved:  pm.HugeRemoved,
			MemlockLimit:      n.inj.MemlockLimit(),
			MemlockRejections: reg.MemlockRejections,
			MemlockRetries:    rc.MemlockRetries,
			MemlockEvictions:  rc.MemlockEvictions,
			WRErrors:          fj.WRErrors,
			WRRetries:         fj.WRRetries,
			ATTEvictions:      hw.ATTEvictions,
		},
		Policy: PolicyStats{
			Kind:            string(ps.Kind),
			PlaceHuge:       ps.PlaceHuge,
			PlaceSmall:      ps.PlaceSmall,
			CacheLazy:       ps.CacheLazy,
			CacheEager:      ps.CacheEager,
			SGEGather:       ps.SGEGather,
			SGEPack:         ps.SGEPack,
			Windows:         ps.Windows,
			DemoteDecisions: ps.DemoteDecisions,
			DemotedPages:    ps.DemotedPages,
			DemotedBytes:    ps.DemotedBytes,
			DemoteTicks:     ps.DemoteTicks,
			TierMigrates:    ps.TierMigrates,
			TierRecomputes:  ps.TierRecomputes,
		},
		Memtier: memtierView(n.Tiers.Stats()),
		Coll:    n.coll,
	}
}

// memtierView folds an N-tier memtier snapshot into the fixed fast/slow
// stats surface: tier 0 is Fast, every slower tier aggregates into Slow
// (exact for the standard two-tier stack; a wider stack sums its slow
// tiers' counters and capacities, with capacity 0 still meaning
// unbounded because the last tier always is).
func memtierView(mt memtier.Stats) MemtierStats {
	out := MemtierStats{
		Promotions:    mt.Promotions,
		Demotions:     mt.Demotions,
		MigratedBytes: mt.MigratedBytes,
		MigrateTicks:  mt.MigrateTicks,
	}
	for i, t := range mt.Tiers {
		dst := &out.Slow
		if i == 0 {
			dst = &out.Fast
		}
		if dst.Name == "" {
			dst.Name = t.Name
		}
		dst.CapacityBytes += t.CapacityBytes
		dst.UsedBytes += t.UsedBytes //reprolint:ignore statspairing: folding another package's snapshot — aggregation, not gauge movement
		dst.PeakBytes += t.PeakBytes
		dst.Assigns += t.Assigns
		dst.Spills += t.Spills
		dst.TouchTicks += t.TouchTicks
	}
	return out
}

// Add accumulates other's counters into s. True counters and live
// gauges add (a cluster-wide total); peak gauges (Cache.PeakPinned,
// Alloc.PeakLive, Mem.HugePagesPeak) take the max instead — per-node
// highs need not coexist in time, so a sum would report a cluster-wide
// peak that never happened. The identity strings keep s's values.
func (s *Stats) Add(other Stats) {
	s.TLB.Hits4K += other.TLB.Hits4K
	s.TLB.Misses4K += other.TLB.Misses4K
	s.TLB.Hits2M += other.TLB.Hits2M
	s.TLB.Misses2M += other.TLB.Misses2M
	s.HCA.ATTHits += other.HCA.ATTHits
	s.HCA.ATTMisses += other.HCA.ATTMisses
	s.HCA.MTTEntries += other.HCA.MTTEntries
	s.HCA.PostedWRs += other.HCA.PostedWRs
	s.HCA.CQEs += other.HCA.CQEs
	s.HCA.BytesGather += other.HCA.BytesGather
	s.HCA.BytesScatter += other.HCA.BytesScatter
	s.HCA.BusBytes += other.HCA.BusBytes
	s.Reg.Registrations += other.Reg.Registrations
	s.Reg.Deregistrations += other.Reg.Deregistrations
	s.Reg.RegTicks += other.Reg.RegTicks
	s.Reg.DeregTicks += other.Reg.DeregTicks
	s.Reg.PagesPinned += other.Reg.PagesPinned
	s.Reg.PinnedBytes += other.Reg.PinnedBytes
	s.Cache.Hits += other.Cache.Hits
	s.Cache.Misses += other.Cache.Misses
	s.Cache.Evictions += other.Cache.Evictions
	s.Cache.PinnedBytes += other.Cache.PinnedBytes
	s.Cache.PeakPinned = max(s.Cache.PeakPinned, other.Cache.PeakPinned)
	s.Alloc.Allocs += other.Alloc.Allocs
	s.Alloc.Frees += other.Alloc.Frees
	s.Alloc.Ticks += other.Alloc.Ticks
	s.Alloc.Syscalls += other.Alloc.Syscalls
	s.Alloc.HugeBytes += other.Alloc.HugeBytes
	s.Alloc.SmallBytes += other.Alloc.SmallBytes
	s.Alloc.LiveBytes += other.Alloc.LiveBytes
	s.Alloc.PeakLive = max(s.Alloc.PeakLive, other.Alloc.PeakLive)
	s.Alloc.FallbackToSmall += other.Alloc.FallbackToSmall
	s.Alloc.FallbackBytes += other.Alloc.FallbackBytes
	s.Mem.HugePagesUsed += other.Mem.HugePagesUsed
	s.Mem.HugePagesPeak = max(s.Mem.HugePagesPeak, other.Mem.HugePagesPeak)
	s.Mem.HugeFailures += other.Mem.HugeFailures
	s.Mem.MappedSmall += other.Mem.MappedSmall
	s.Mem.MappedHuge += other.Mem.MappedHuge
	s.Mem.HugeFallbacks += other.Mem.HugeFallbacks
	s.Mem.HugeFallbackBytes += other.Mem.HugeFallbackBytes
	if s.Faults.Spec == "" {
		s.Faults.Spec = other.Faults.Spec
	}
	if s.Faults.MemlockLimit == 0 {
		s.Faults.MemlockLimit = other.Faults.MemlockLimit
	}
	s.Faults.InjectedHugeFails += other.Faults.InjectedHugeFails
	s.Faults.PoolPagesRemoved += other.Faults.PoolPagesRemoved
	s.Faults.MemlockRejections += other.Faults.MemlockRejections
	s.Faults.MemlockRetries += other.Faults.MemlockRetries
	s.Faults.MemlockEvictions += other.Faults.MemlockEvictions
	s.Faults.WRErrors += other.Faults.WRErrors
	s.Faults.WRRetries += other.Faults.WRRetries
	s.Faults.ATTEvictions += other.Faults.ATTEvictions
	if s.Policy.Kind == "" {
		s.Policy.Kind = other.Policy.Kind
	}
	s.Policy.PlaceHuge += other.Policy.PlaceHuge
	s.Policy.PlaceSmall += other.Policy.PlaceSmall
	s.Policy.CacheLazy += other.Policy.CacheLazy
	s.Policy.CacheEager += other.Policy.CacheEager
	s.Policy.SGEGather += other.Policy.SGEGather
	s.Policy.SGEPack += other.Policy.SGEPack
	s.Policy.Windows += other.Policy.Windows
	s.Policy.DemoteDecisions += other.Policy.DemoteDecisions
	s.Policy.DemotedPages += other.Policy.DemotedPages
	s.Policy.DemotedBytes += other.Policy.DemotedBytes
	s.Policy.DemoteTicks += other.Policy.DemoteTicks
	s.Policy.TierMigrates += other.Policy.TierMigrates
	s.Policy.TierRecomputes += other.Policy.TierRecomputes
	s.Memtier.Fast.add(other.Memtier.Fast)
	s.Memtier.Slow.add(other.Memtier.Slow)
	s.Memtier.Promotions += other.Memtier.Promotions
	s.Memtier.Demotions += other.Memtier.Demotions
	s.Memtier.MigratedBytes += other.Memtier.MigratedBytes
	s.Memtier.MigrateTicks += other.Memtier.MigrateTicks
	s.Coll.Alltoalls += other.Coll.Alltoalls
	s.Coll.Alltoallvs += other.Coll.Alltoallvs
	s.Coll.PairwiseSteps += other.Coll.PairwiseSteps
	s.Coll.BytesSent += other.Coll.BytesSent
	s.Coll.BytesRecv += other.Coll.BytesRecv
	s.Coll.LocalCopyBytes += other.Coll.LocalCopyBytes
}

// add accumulates one tier's counters across nodes: counters and live
// gauges sum (cluster-wide totals, cluster-wide capacity), the peak
// takes the max — per-node highs need not coexist in time.
func (t *TierStat) add(other TierStat) {
	if t.Name == "" {
		t.Name = other.Name
	}
	t.CapacityBytes += other.CapacityBytes
	t.UsedBytes += other.UsedBytes
	t.PeakBytes = max(t.PeakBytes, other.PeakBytes)
	t.Assigns += other.Assigns
	t.Spills += other.Spills
	t.TouchTicks += other.TouchTicks
}

// Sum totals a set of per-node snapshots (empty input gives zero Stats).
func Sum(all []Stats) Stats {
	var out Stats
	for i, s := range all {
		if i == 0 {
			out.Machine = s.Machine
			out.Allocator = s.Allocator
		}
		out.Add(s)
	}
	return out
}
