// Package sweepd is the long-running sweep service: a plain net/http
// server that accepts experiment grids, executes them on the sweep
// engine's worker pool, streams per-cell results as they complete, and
// serves BENCH documents, historical baselines and on-demand Perfetto
// traces. It is the daemon face of the same determinism dividend the
// batch tools exploit — every cell is a pure function of its inputs, so
// the service fronts a content-addressed store (internal/cas) and an
// unchanged grid re-submission is answered entirely from cache.
//
// Endpoints:
//
//	POST   /grids               submit a grid (inline JSON or {"name":"smoke"}); 202 + job id
//	GET    /jobs/{id}           job status; ?wait=1 blocks until terminal
//	DELETE /jobs/{id}           cancel a queued or running job
//	GET    /jobs/{id}/results   NDJSON stream of per-cell results as they complete
//	GET    /jobs/{id}/bench     the finished BENCH document; ?view=stripped for the deterministic view
//	GET    /jobs/{id}/trace     Perfetto trace of one cell, ?cell=KEY (cached in the store)
//	GET    /bench/{name}        committed baseline BENCH_<name>.json from the bench dir
//	GET    /healthz             liveness ("ok")
//	GET    /statsz              JSON counters: queue, jobs by state, cache hit/miss/evict
//
// Concurrency model: one runner goroutine owns job execution (jobs are
// serialized; each job parallelizes internally over Options.Workers),
// submissions go through a bounded queue that refuses with 429 when
// full, and Drain stops intake, finishes the queue and the in-flight
// job, and returns. The package is intentionally outside the
// determinism boundary — it is infrastructure around the simulation,
// never inside it — and is exempted from the schedonly/determinism
// lints the simulation packages obey.
package sweepd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"sync"

	"repro/internal/cas"
	"repro/internal/sweep"
)

// Config sizes a Server.
type Config struct {
	// Cache is the content-addressed result store; nil runs uncached.
	Cache *cas.Store
	// Workers sizes each job's sweep worker pool (0 = GOMAXPROCS).
	Workers int
	// QueueCap bounds the submission queue; a full queue refuses new
	// grids with 429 (<= 0 takes 8).
	QueueCap int
	// BenchDir is where committed BENCH_<name>.json baselines live for
	// GET /bench/{name} ("" disables the endpoint).
	BenchDir string
	// Fingerprint overrides the code fingerprint in cache keys
	// ("" = cas.ModuleFingerprint()).
	Fingerprint string
}

// Job states, in lifecycle order.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// jobStates is the fixed iteration order for counters (maps are
// unordered; the rendered JSON must not be).
var jobStates = [...]string{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled}

// cellResult is one NDJSON stream record: a completed cell plus how
// many of its replicates the cache answered.
type cellResult struct {
	Cell       sweep.Cell `json:"cell"`
	CachedRuns int        `json:"cached_runs"`
}

// job is one submitted grid moving through the queue.
type job struct {
	id   string
	grid sweep.Grid

	mu     sync.Mutex
	cond   *sync.Cond
	state  string
	events []cellResult // grows as cells complete; never truncated
	bench  *sweep.Bench // set in a terminal state
	stats  sweep.ExecStats
	errs   []string

	cancel   context.CancelFunc
	canceled bool
}

func (j *job) terminal() bool {
	return j.state == StateDone || j.state == StateFailed || j.state == StateCanceled
}

// status is the GET /jobs/{id} document.
type status struct {
	ID     string          `json:"id"`
	State  string          `json:"state"`
	Grid   string          `json:"grid"`
	Cells  int             `json:"cells"`
	Runs   int             `json:"runs"`
	Exec   sweep.ExecStats `json:"exec"`
	Errors []string        `json:"errors,omitempty"`
}

// Server is one sweepd instance. Create with New, mount via Handler,
// stop via Drain.
type Server struct {
	cfg         Config
	fingerprint string

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // job ids in submission order
	queue    chan *job
	draining bool
	nextID   int

	runnerDone chan struct{}
}

// New builds a Server and starts its runner goroutine.
func New(cfg Config) *Server {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 8
	}
	fp := cfg.Fingerprint
	if fp == "" {
		fp = cas.ModuleFingerprint()
	}
	s := &Server{
		cfg:         cfg,
		fingerprint: fp,
		jobs:        make(map[string]*job),
		queue:       make(chan *job, cfg.QueueCap),
		runnerDone:  make(chan struct{}),
	}
	go s.runner()
	return s
}

// Handler mounts the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /grids", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/results", s.handleResults)
	mux.HandleFunc("GET /jobs/{id}/bench", s.handleBench)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /bench/{name}", s.handleBaseline)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	return mux
}

// Drain stops accepting submissions, lets queued and in-flight jobs
// finish, and returns when the runner has exited or ctx expires (in
// which case the in-flight job is canceled before returning).
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue) // submissions check draining under s.mu first
	}
	s.mu.Unlock()
	select {
	case <-s.runnerDone:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for _, j := range s.jobs {
			j.mu.Lock()
			if j.cancel != nil && !j.terminal() {
				j.cancel()
			}
			j.mu.Unlock()
		}
		s.mu.Unlock()
		<-s.runnerDone
		return ctx.Err()
	}
}

// runner owns execution: one job at a time, each parallel internally.
func (s *Server) runner() {
	defer close(s.runnerDone)
	for j := range s.queue {
		s.runJob(j)
	}
}

func (s *Server) runJob(j *job) {
	ctx, cancel := context.WithCancel(context.Background())
	j.mu.Lock()
	if j.canceled {
		j.state = StateCanceled
		j.cond.Broadcast()
		j.mu.Unlock()
		cancel()
		return
	}
	j.state = StateRunning
	j.cancel = cancel
	j.cond.Broadcast()
	j.mu.Unlock()

	opts := sweep.Options{
		Workers:     s.cfg.Workers,
		Cache:       s.cfg.Cache,
		Fingerprint: s.fingerprint,
		Stats:       &j.stats,
		Ctx:         ctx,
		OnCell: func(c sweep.Cell, cachedRuns int) {
			j.mu.Lock()
			j.events = append(j.events, cellResult{Cell: c, CachedRuns: cachedRuns})
			j.cond.Broadcast()
			j.mu.Unlock()
		},
	}
	bench, runErrs, err := sweep.Execute(j.grid, opts)
	cancel()

	j.mu.Lock()
	j.bench = bench
	for _, re := range runErrs {
		j.errs = append(j.errs, re.Error())
	}
	switch {
	case err != nil && j.canceled:
		j.state = StateCanceled
	case err != nil:
		j.state = StateFailed
		j.errs = append(j.errs, err.Error())
	case len(runErrs) > 0:
		j.state = StateFailed
	default:
		j.state = StateDone
	}
	j.cond.Broadcast()
	j.mu.Unlock()
}

// submitRequest is the POST /grids body: a full inline grid, or just
// {"name":"smoke"} to run a built-in by name. Grid's own JSON shape
// covers both (strictly decoded).
func decodeGrid(r io.Reader) (sweep.Grid, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var g sweep.Grid
	if err := dec.Decode(&g); err != nil {
		return g, fmt.Errorf("bad grid: %w", err)
	}
	if len(g.Workloads) == 0 && len(g.Machines) == 0 && len(g.Seeds) == 0 {
		builtin, ok := sweep.GridByName(g.Name)
		if !ok {
			return g, fmt.Errorf("unknown built-in grid %q", g.Name)
		}
		return builtin, nil
	}
	return g, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	grid, err := decodeGrid(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	cells, runs, err := grid.Counts()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, fmt.Errorf("draining"))
		return
	}
	s.nextID++
	j := &job{id: "job-" + strconv.Itoa(s.nextID), grid: grid, state: StateQueued}
	j.cond = sync.NewCond(&j.mu)
	select {
	case s.queue <- j:
	default:
		s.nextID-- // the id was never exposed
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, fmt.Errorf("queue full (%d job(s) waiting)", cap(s.queue)))
		return
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, map[string]any{
		"id": j.id, "state": StateQueued, "grid": grid.Name, "cells": cells, "runs": runs,
	})
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		httpError(w, http.StatusNotFound, fmt.Errorf("no job %q", r.PathValue("id")))
	}
	return j
}

func (j *job) statusLocked() status {
	return status{
		ID: j.id, State: j.state, Grid: j.grid.Name,
		Cells: j.stats.CellsComplete, Runs: j.stats.RunsTotal,
		Exec: j.stats, Errors: j.errs,
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	if r.URL.Query().Get("wait") != "" {
		stop := context.AfterFunc(r.Context(), j.cond.Broadcast)
		defer stop()
		for !j.terminal() && r.Context().Err() == nil {
			j.cond.Wait()
		}
	}
	st := j.statusLocked()
	j.mu.Unlock()
	writeJSON(w, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	if !j.terminal() {
		j.canceled = true
		if j.cancel != nil {
			j.cancel()
		} else {
			// Still queued: the runner will see canceled and skip it.
			j.state = StateCanceled
			j.cond.Broadcast()
		}
	}
	st := j.statusLocked()
	j.mu.Unlock()
	writeJSON(w, st)
}

// handleResults streams one JSON object per completed cell (NDJSON),
// flushing after each, until the job reaches a terminal state or the
// client disconnects. Replaying is cheap: events are retained, so a
// late subscriber sees the full history.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Push the headers now: subscribers attach before the first
		// cell completes and must not block waiting for them.
		flusher.Flush()
	}
	enc := json.NewEncoder(w)

	stop := context.AfterFunc(r.Context(), j.cond.Broadcast)
	defer stop()
	next := 0
	for {
		j.mu.Lock()
		for next == len(j.events) && !j.terminal() && r.Context().Err() == nil {
			j.cond.Wait()
		}
		batch := j.events[next:]
		next = len(j.events)
		done := j.terminal()
		j.mu.Unlock()

		for _, ev := range batch {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		if done || r.Context().Err() != nil {
			return
		}
	}
}

func (s *Server) handleBench(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	bench, state := j.bench, j.state
	j.mu.Unlock()
	if state != StateDone {
		httpError(w, http.StatusConflict, fmt.Errorf("job %s is %s, not done", j.id, state))
		return
	}
	if r.URL.Query().Get("view") == "stripped" {
		clone, err := cloneBench(bench)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		clone.StripWall()
		bench = clone
	}
	w.Header().Set("Content-Type", "application/json")
	bench.Write(w)
}

// cloneBench deep-copies via the canonical encoding (float64 survives
// the JSON round trip exactly), so stripping a view never mutates the
// job's document.
func cloneBench(b *sweep.Bench) (*sweep.Bench, error) {
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		return nil, err
	}
	return sweep.Load(&buf)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	cell := r.URL.Query().Get("cell")
	if cell == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("missing ?cell=KEY"))
		return
	}
	j.mu.Lock()
	grid := j.grid
	j.mu.Unlock()
	data, err := sweep.TraceCellCached(grid, cell, s.cfg.Cache, s.fingerprint)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

var benchName = regexp.MustCompile(`^[a-zA-Z0-9_-]+$`)

func (s *Server) handleBaseline(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if s.cfg.BenchDir == "" {
		httpError(w, http.StatusNotFound, fmt.Errorf("no bench dir configured"))
		return
	}
	if !benchName.MatchString(name) {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad baseline name %q", name))
		return
	}
	b, err := sweep.LoadFile(s.cfg.BenchDir + "/BENCH_" + name + ".json")
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	b.Write(w)
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	counts := make(map[string]int, len(jobStates))
	for _, st := range jobStates {
		counts[st] = 0
	}
	var agg sweep.ExecStats
	for _, id := range s.order {
		j := s.jobs[id]
		j.mu.Lock()
		counts[j.state]++
		agg.RunsTotal += j.stats.RunsTotal
		agg.RunsExecuted += j.stats.RunsExecuted
		agg.RunsCached += j.stats.RunsCached
		agg.RunsFailed += j.stats.RunsFailed
		agg.CellsTotal += j.stats.CellsTotal
		agg.CellsComplete += j.stats.CellsComplete
		j.mu.Unlock()
	}
	doc := map[string]any{
		"draining":  s.draining,
		"workers":   s.cfg.Workers,
		"queue_len": len(s.queue),
		"queue_cap": cap(s.queue),
		"jobs":      counts,
		"exec":      agg,
	}
	if s.cfg.Cache != nil {
		doc["cache"] = s.cfg.Cache.Stats()
	}
	s.mu.Unlock()
	writeJSON(w, doc)
}

// Jobs lists job ids in submission order (tests and diagnostics).
func (s *Server) Jobs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.order))
	copy(out, s.order)
	return out
}

func writeJSON(w http.ResponseWriter, v any) {
	if w.Header().Get("Content-Type") == "" {
		w.Header().Set("Content-Type", "application/json")
	}
	data, err := json.Marshal(v)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	data = append(data, '\n')
	w.Write(data)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	data, _ := json.Marshal(map[string]string{"error": err.Error()})
	w.Write(append(data, '\n'))
}
