package sweepd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cas"
	"repro/internal/sweep"
)

// --- test scaffolding ---------------------------------------------------

// release feeds the blocking test workload: every replicate of
// test/block consumes one token before returning. Tests that need a job
// to sit in-flight submit it, assert what they want, then send tokens.
var (
	blockOnce sync.Once
	release   = make(chan struct{}, 128)
)

func registerBlocking(t *testing.T) {
	t.Helper()
	blockOnce.Do(func() {
		err := sweep.Register(sweep.Workload{
			Name:       "test/block",
			Primary:    "ticks",
			Strategied: true,
			Run: func(sweep.RunContext) (sweep.Metrics, error) {
				<-release
				return sweep.Metrics{"ticks": 1}, nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func blockGrid(name string) sweep.Grid {
	return sweep.Grid{
		Name:       name,
		Machines:   []string{"opteron"},
		Workloads:  []string{"test/block"},
		Strategies: []string{"small-lazy"},
		Seeds:      []uint64{1},
	}
}

// e2eGrid is a real (non-blocking) grid small enough to run repeatedly.
func e2eGrid() sweep.Grid {
	return sweep.Grid{
		Name:       "e2e",
		Machines:   []string{"opteron"},
		Workloads:  []string{"alloc/abinit"},
		Strategies: []string{"small-lazy"},
		Seeds:      []uint64{1, 2},
	}
}

type harness struct {
	t   *testing.T
	srv *Server
	ts  *httptest.Server
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	if cfg.Fingerprint == "" {
		cfg.Fingerprint = "test-fp"
	}
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Drain(ctx)
		ts.Close()
	})
	return &harness{t: t, srv: srv, ts: ts}
}

func (h *harness) do(method, path string, body string) (int, []byte) {
	h.t.Helper()
	req, err := http.NewRequest(method, h.ts.URL+path, strings.NewReader(body))
	if err != nil {
		h.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		h.t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		h.t.Fatal(err)
	}
	return resp.StatusCode, data
}

// submit posts a grid and returns the job id.
func (h *harness) submit(g sweep.Grid) string {
	h.t.Helper()
	body, _ := json.Marshal(g)
	code, data := h.do("POST", "/grids", string(body))
	if code != http.StatusAccepted {
		h.t.Fatalf("submit: %d %s", code, data)
	}
	var resp struct{ ID string }
	if err := json.Unmarshal(data, &resp); err != nil || resp.ID == "" {
		h.t.Fatalf("submit response %q: %v", data, err)
	}
	return resp.ID
}

// wait blocks (?wait=1) until the job is terminal and returns its status.
func (h *harness) wait(id string) status {
	h.t.Helper()
	code, data := h.do("GET", "/jobs/"+id+"?wait=1", "")
	if code != http.StatusOK {
		h.t.Fatalf("wait %s: %d %s", id, code, data)
	}
	var st status
	if err := json.Unmarshal(data, &st); err != nil {
		h.t.Fatalf("status %q: %v", data, err)
	}
	return st
}

// awaitState polls until the job reports the wanted state.
func (h *harness) awaitState(id, want string) {
	h.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		code, data := h.do("GET", "/jobs/"+id, "")
		if code != http.StatusOK {
			h.t.Fatalf("status %s: %d %s", id, code, data)
		}
		var st status
		if err := json.Unmarshal(data, &st); err != nil {
			h.t.Fatal(err)
		}
		if st.State == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	h.t.Fatalf("job %s never reached state %q", id, want)
}

// --- tests --------------------------------------------------------------

// TestSubmitTwiceSecondRunFullyCached is the service half of the
// tentpole acceptance: the same grid submitted twice against one store
// executes zero replicates the second time and serves a byte-identical
// stripped BENCH document.
func TestSubmitTwiceSecondRunFullyCached(t *testing.T) {
	store, err := cas.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	h := newHarness(t, Config{Cache: store, Workers: 2})

	id1 := h.submit(e2eGrid())
	st1 := h.wait(id1)
	if st1.State != StateDone || st1.Exec.RunsExecuted != 2 || st1.Exec.RunsCached != 0 {
		t.Fatalf("first run: %+v", st1)
	}

	id2 := h.submit(e2eGrid())
	st2 := h.wait(id2)
	if st2.State != StateDone || st2.Exec.RunsExecuted != 0 || st2.Exec.RunsCached != 2 {
		t.Fatalf("second run not fully cached: %+v", st2)
	}

	_, b1 := h.do("GET", "/jobs/"+id1+"/bench?view=stripped", "")
	_, b2 := h.do("GET", "/jobs/"+id2+"/bench?view=stripped", "")
	if !bytes.Equal(b1, b2) {
		t.Fatal("stripped BENCH documents differ between executed and cached runs")
	}
	if len(b1) == 0 {
		t.Fatal("empty bench document")
	}
	// The full (unstripped) view is also available and validates.
	code, full := h.do("GET", "/jobs/"+id1+"/bench", "")
	if code != http.StatusOK {
		t.Fatalf("bench: %d %s", code, full)
	}
	if b, err := sweep.Load(bytes.NewReader(full)); err != nil {
		t.Fatalf("served bench invalid: %v", err)
	} else if b.Name != "e2e" {
		t.Fatalf("served bench grid = %q", b.Name)
	}
}

// TestBuiltinGridByName: {"name":"smoke"} resolves the built-in grid.
func TestBuiltinGridByName(t *testing.T) {
	h := newHarness(t, Config{Workers: 2})
	code, data := h.do("POST", "/grids", `{"name":"smoke"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit smoke: %d %s", code, data)
	}
	var resp struct {
		ID   string
		Grid string
		Runs int
	}
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Grid != "smoke" || resp.Runs == 0 {
		t.Fatalf("smoke submit response: %+v", resp)
	}
	if st := h.wait(resp.ID); st.State != StateDone {
		t.Fatalf("smoke run: %+v", st)
	}

	code, data = h.do("POST", "/grids", `{"name":"nope"}`)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown grid: %d %s", code, data)
	}
	code, data = h.do("POST", "/grids", `{"bogus":true}`)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown field: %d %s", code, data)
	}
}

// TestResultsStreamNDJSON subscribes before completion and sees one
// NDJSON record per cell, tagged with its cached-run count.
func TestResultsStreamNDJSON(t *testing.T) {
	registerBlocking(t)
	h := newHarness(t, Config{Workers: 1})

	g := blockGrid("stream")
	g.Seeds = []uint64{1, 2} // one cell, two replicates
	id := h.submit(g)
	h.awaitState(id, StateRunning)

	resp, err := http.Get(h.ts.URL + "/jobs/" + id + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}

	release <- struct{}{}
	release <- struct{}{}

	var lines []cellResult
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev cellResult
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		lines = append(lines, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 1 {
		t.Fatalf("streamed %d cells, want 1", len(lines))
	}
	if got := lines[0].Cell.Key(); got != "test/block/opteron/small-lazy" {
		t.Fatalf("streamed cell %q", got)
	}
	if len(lines[0].Cell.Runs) != 2 {
		t.Fatalf("streamed cell has %d runs", len(lines[0].Cell.Runs))
	}

	// A late subscriber replays the full history immediately.
	h.wait(id)
	code, data := h.do("GET", "/jobs/"+id+"/results", "")
	if code != http.StatusOK || !bytes.Contains(data, []byte(`"cached_runs":0`)) {
		t.Fatalf("replay: %d %s", code, data)
	}
}

// TestBackpressure429 fills the bounded queue and expects 429 with a
// Retry-After header; queued work still completes once released.
func TestBackpressure429(t *testing.T) {
	registerBlocking(t)
	h := newHarness(t, Config{Workers: 1, QueueCap: 1})

	id1 := h.submit(blockGrid("bp1")) // picked up by the runner, blocks
	h.awaitState(id1, StateRunning)
	id2 := h.submit(blockGrid("bp2")) // sits in the queue buffer

	body, _ := json.Marshal(blockGrid("bp3"))
	req, _ := http.NewRequest("POST", h.ts.URL+"/grids", bytes.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload submit: %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	release <- struct{}{}
	release <- struct{}{}
	if st := h.wait(id1); st.State != StateDone {
		t.Fatalf("job 1: %+v", st)
	}
	if st := h.wait(id2); st.State != StateDone {
		t.Fatalf("job 2: %+v", st)
	}
}

// TestGracefulDrain: draining lets the in-flight job finish, refuses
// new submissions with 503, and Drain returns once the runner exits.
func TestGracefulDrain(t *testing.T) {
	registerBlocking(t)
	store, err := cas.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Workers: 1, Cache: store, Fingerprint: "drain-fp"})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	h := &harness{t: t, srv: srv, ts: ts}

	id := h.submit(blockGrid("drain"))
	h.awaitState(id, StateRunning)

	drainErr := make(chan error, 1)
	go func() { drainErr <- srv.Drain(context.Background()) }()

	// Submissions are refused while draining (poll: the drain goroutine
	// sets the flag asynchronously).
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, _ := h.do("POST", "/grids", `{"name":"smoke"}`)
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("draining server still accepts submissions")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The in-flight job completes rather than being killed.
	release <- struct{}{}
	if err := <-drainErr; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st := h.wait(id); st.State != StateDone {
		t.Fatalf("in-flight job after drain: %+v", st)
	}
	// Drain is idempotent.
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
}

// TestCancelQueuedAndRunning: DELETE cancels a queued job outright and
// interrupts a running one via its context.
func TestCancelQueuedAndRunning(t *testing.T) {
	registerBlocking(t)
	h := newHarness(t, Config{Workers: 1, QueueCap: 2})

	running := blockGrid("cancel-run")
	running.Seeds = []uint64{1, 2} // replicate 2 is pending when we cancel
	id1 := h.submit(running)
	h.awaitState(id1, StateRunning)
	id2 := h.submit(blockGrid("cancel-queue"))

	// Cancel the queued job: immediate, nothing ever ran.
	code, data := h.do("DELETE", "/jobs/"+id2, "")
	if code != http.StatusOK {
		t.Fatalf("cancel queued: %d %s", code, data)
	}
	if st := h.wait(id2); st.State != StateCanceled || st.Exec.RunsTotal != 0 {
		t.Fatalf("queued job after cancel: %+v", st)
	}

	// Cancel the running job, then release its blocked replicate: the
	// pending replicate fails with the context error.
	if code, data := h.do("DELETE", "/jobs/"+id1, ""); code != http.StatusOK {
		t.Fatalf("cancel running: %d %s", code, data)
	}
	release <- struct{}{}
	st := h.wait(id1)
	if st.State != StateCanceled {
		t.Fatalf("running job after cancel: %+v", st)
	}
	if len(st.Errors) == 0 {
		t.Fatal("canceled job reports no errors")
	}

	// Unknown job and unknown verbs.
	if code, _ := h.do("DELETE", "/jobs/nope", ""); code != http.StatusNotFound {
		t.Fatalf("cancel unknown: %d", code)
	}
	if code, _ := h.do("GET", "/jobs/nope", ""); code != http.StatusNotFound {
		t.Fatalf("status unknown: %d", code)
	}
}

// TestTraceEndpointCachesInStore: the first trace renders and stores,
// the second is served byte-identical from the store.
func TestTraceEndpointCachesInStore(t *testing.T) {
	store, err := cas.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	h := newHarness(t, Config{Cache: store, Workers: 1})
	id := h.submit(e2eGrid())
	h.wait(id)

	before := store.Stats().Hits
	code, t1 := h.do("GET", "/jobs/"+id+"/trace?cell=alloc/abinit/opteron/small-lazy", "")
	if code != http.StatusOK || len(t1) == 0 {
		t.Fatalf("trace: %d (%d bytes)", code, len(t1))
	}
	code, t2 := h.do("GET", "/jobs/"+id+"/trace?cell=alloc/abinit/opteron/small-lazy", "")
	if code != http.StatusOK || !bytes.Equal(t1, t2) {
		t.Fatal("second trace differs")
	}
	if store.Stats().Hits != before+1 {
		t.Fatalf("trace not served from store: hits %d -> %d", before, store.Stats().Hits)
	}
	if code, _ := h.do("GET", "/jobs/"+id+"/trace?cell=no/such/cell", ""); code != http.StatusBadRequest {
		t.Fatalf("bad cell: %d", code)
	}
	if code, _ := h.do("GET", "/jobs/"+id+"/trace", ""); code != http.StatusBadRequest {
		t.Fatalf("missing cell param: %d", code)
	}
}

// TestBaselineEndpoint serves committed BENCH_<name>.json documents and
// rejects traversal-shaped names.
func TestBaselineEndpoint(t *testing.T) {
	dir := t.TempDir()
	bench, errs, err := sweep.Execute(e2eGrid(), sweep.Options{})
	if err != nil || len(errs) != 0 {
		t.Fatalf("seed run: %v %v", errs, err)
	}
	if err := bench.WriteFile(filepath.Join(dir, "BENCH_e2e.json")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_junk.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	h := newHarness(t, Config{BenchDir: dir})

	code, data := h.do("GET", "/bench/e2e", "")
	if code != http.StatusOK {
		t.Fatalf("baseline: %d %s", code, data)
	}
	if b, err := sweep.Load(bytes.NewReader(data)); err != nil || b.Name != "e2e" {
		t.Fatalf("baseline document: %v", err)
	}
	if code, _ := h.do("GET", "/bench/absent", ""); code != http.StatusNotFound {
		t.Fatalf("missing baseline: %d", code)
	}
	if code, _ := h.do("GET", "/bench/junk", ""); code != http.StatusNotFound {
		t.Fatalf("invalid baseline should 404: %d", code)
	}
	if code, _ := h.do("GET", "/bench/..%2fsecrets", ""); code == http.StatusOK {
		t.Fatal("traversal name served")
	}
}

// TestHealthAndStatsz: liveness and the counters document.
func TestHealthAndStatsz(t *testing.T) {
	store, err := cas.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	h := newHarness(t, Config{Cache: store, Workers: 1, QueueCap: 3})
	code, data := h.do("GET", "/healthz", "")
	if code != http.StatusOK || string(data) != "ok\n" {
		t.Fatalf("healthz: %d %q", code, data)
	}

	h.wait(h.submit(e2eGrid()))
	h.wait(h.submit(e2eGrid()))

	code, data = h.do("GET", "/statsz", "")
	if code != http.StatusOK {
		t.Fatalf("statsz: %d %s", code, data)
	}
	var st struct {
		Draining bool           `json:"draining"`
		QueueCap int            `json:"queue_cap"`
		Jobs     map[string]int `json:"jobs"`
		Exec     struct {
			RunsCached   int `json:"runs_cached"`
			RunsExecuted int `json:"runs_executed"`
		} `json:"exec"`
		Cache *cas.Stats `json:"cache"`
	}
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("statsz document %s: %v", data, err)
	}
	if st.Draining || st.QueueCap != 3 || st.Jobs[StateDone] != 2 {
		t.Fatalf("statsz: %+v", st)
	}
	if st.Exec.RunsExecuted != 2 || st.Exec.RunsCached != 2 {
		t.Fatalf("statsz exec counters: %+v", st.Exec)
	}
	if st.Cache == nil || st.Cache.Hits == 0 {
		t.Fatalf("statsz cache counters: %+v", st.Cache)
	}
}

// TestWaitReturnsOnClientDisconnect: a ?wait=1 poller whose connection
// dies does not wedge the job's lock.
func TestWaitReturnsOnClientDisconnect(t *testing.T) {
	registerBlocking(t)
	h := newHarness(t, Config{Workers: 1})
	id := h.submit(blockGrid("discon"))
	h.awaitState(id, StateRunning)

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", h.ts.URL+"/jobs/"+id+"?wait=1", nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("canceled waiter never returned")
	}

	release <- struct{}{}
	if st := h.wait(id); st.State != StateDone {
		t.Fatalf("job after disconnect: %+v", st)
	}
}

func TestMain(m *testing.M) {
	code := m.Run()
	// Drain any stray tokens so a failed test cannot leak goroutines
	// into the race detector's exit check.
	for {
		select {
		case <-release:
		default:
			os.Exit(code)
		}
	}
}
