package machine

import "testing"

func TestPaperQuotedParameters(t *testing.T) {
	// Section 2 quotes the Opteron TLB split explicitly: 544 entries for
	// 4 KB pages but only 8 for hugepages.
	op := Opteron()
	if op.CPU.TLB4K.Entries != 544 {
		t.Errorf("Opteron 4K TLB entries = %d, want 544", op.CPU.TLB4K.Entries)
	}
	if op.CPU.TLB2M.Entries != 8 {
		t.Errorf("Opteron 2M TLB entries = %d, want 8", op.CPU.TLB2M.Entries)
	}
	// Figure 5 tops out near 1750 MB/s bidirectional on the PCIe
	// InfiniHost; the per-direction wire rate must be ~half that.
	if agg := 2 * op.HCA.WireBandwidthMBs; agg < 1700 || agg > 1900 {
		t.Errorf("Opteron bidirectional wire = %v MB/s, want ~1750", agg)
	}
}

func TestGeometriesAreValid(t *testing.T) {
	for _, m := range All() {
		for _, g := range []TLBGeometry{m.CPU.TLB4K, m.CPU.TLB2M} {
			if g.Entries <= 0 || g.Ways <= 0 || g.Entries%g.Ways != 0 {
				t.Errorf("%s: bad TLB geometry %+v", m.Name, g)
			}
		}
		if m.HCA.ATTEntries%m.HCA.ATTWays != 0 {
			t.Errorf("%s: ATT entries %d not divisible by ways %d",
				m.Name, m.HCA.ATTEntries, m.HCA.ATTWays)
		}
		if m.Mem.TotalBytes < int64(m.Mem.HugePool)*HugePageSize {
			t.Errorf("%s: hugepage pool larger than memory", m.Name)
		}
		if m.HCA.MTTPushBatch <= 0 {
			t.Errorf("%s: MTT push batch must be positive", m.Name)
		}
		if m.RanksPerNode <= 0 {
			t.Errorf("%s: ranks per node must be positive", m.Name)
		}
	}
}

func TestByName(t *testing.T) {
	for _, alias := range []string{"opteron", "amd"} {
		if m := ByName(alias); m == nil || m.Name != Opteron().Name {
			t.Errorf("ByName(%q) failed", alias)
		}
	}
	if m := ByName("xeon"); m == nil || m.Name != Xeon().Name {
		t.Error("ByName(xeon) failed")
	}
	if m := ByName("systemp"); m == nil || m.Name != SystemP().Name {
		t.Error("ByName(systemp) failed")
	}
	if ByName("cray") != nil {
		t.Error("ByName(cray) should be nil")
	}
}

func TestPageConstants(t *testing.T) {
	if SmallPerHuge != 512 {
		t.Fatalf("SmallPerHuge = %d, want 512", SmallPerHuge)
	}
	if HugePageSize != 2*1024*1024 || SmallPageSize != 4096 {
		t.Fatal("page size constants wrong")
	}
}

func TestXeonIsBusBottlenecked(t *testing.T) {
	// The Xeon/PCI-X system is where the ATT effect is visible: its bus
	// round-trip cost must dominate the PCIe system's, and its wire must
	// be capped below the Opteron's.
	x, o := Xeon(), Opteron()
	if x.Bus.BandwidthMBs >= x.HCA.WireBandwidthMBs {
		t.Error("Xeon DMA path must be the bottleneck (bus below wire) for the ATT effect to show")
	}
	if o.Bus.BandwidthMBs <= o.HCA.WireBandwidthMBs {
		t.Error("Opteron PCIe must outrun the wire (ATT effect hidden)")
	}
	if x.HCA.WireBandwidthMBs >= o.HCA.WireBandwidthMBs {
		t.Error("Xeon wire bandwidth should be below Opteron")
	}
	if x.HCA.ATTEntries >= o.HCA.ATTEntries {
		t.Error("Xeon ATT should be smaller than Opteron's")
	}
}
