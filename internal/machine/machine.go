// Package machine describes the three test systems of the paper's
// evaluation (Section 5) as parameter sets consumed by the rest of the
// simulator: an AMD Opteron node with a Mellanox InfiniHost on PCI-Express,
// an Intel Xeon node with an InfiniHost on PCI-X, and an IBM low-end
// System p with the IBM eHCA on the GX bus.
//
// The numbers are calibrated so that the simulated system reproduces the
// magnitudes the paper reports (Section 5 of DESIGN.md); they are not
// datasheet-exact.
package machine

import "repro/internal/simtime"

// Page sizes used throughout the repository. Linux/x86-64 small pages are
// 4 KiB; hugepages are 2 MiB (the paper's "2 MB pages were sent" on Xeon).
const (
	SmallPageSize = 4 << 10
	HugePageSize  = 2 << 20
	// SmallPerHuge is the number of small pages covered by one hugepage.
	SmallPerHuge = HugePageSize / SmallPageSize
	// CacheLineSize is the coherence/DMA granule assumed by the
	// alignment model of Figure 4.
	CacheLineSize = 64
)

// TLBGeometry describes one translation-lookaside buffer entry file.
type TLBGeometry struct {
	Entries int // total entries
	Ways    int // associativity; Entries must be divisible by Ways
}

// CPU describes the processor-side parameters that matter to the paper:
// the split 4 KiB / 2 MiB data-TLB entry files (the Opteron's 544 vs 8
// entries are quoted in Section 2), the page-walk penalty, and a hardware
// prefetcher whose effectiveness grows with physical contiguity.
type CPU struct {
	Name        string
	ClockMHz    int
	TLB4K       TLBGeometry
	TLB2M       TLBGeometry
	WalkTicks   simtime.Ticks // page-table walk penalty per TLB miss
	LineTicks   simtime.Ticks // cost to touch one cache line from memory
	PrefetchHit float64       // fraction of line cost hidden when the prefetcher is in stride within one physical extent
}

// Bus describes the IO path between host memory and the HCA.
type Bus struct {
	Name string
	// BandwidthMBs is the sustained DMA bandwidth in MB/s.
	BandwidthMBs float64
	// TxnTicks is the fixed per-DMA-transaction latency (arbitration,
	// header, completion).
	TxnTicks simtime.Ticks
	// BurstBytes is the natural burst size; reads that start misaligned
	// with respect to it pay AlignPenalty extra ticks (Figure 4's
	// "optimized for certain offsets").
	BurstBytes   int
	AlignPenalty simtime.Ticks
}

// HCA describes the host channel adapter.
type HCA struct {
	Name string
	// ATTEntries is the size of the on-adapter address-translation-table
	// cache; ATTWays its associativity. Misses cost ATTMissTicks (a bus
	// round trip to fetch the MTT entry from host memory).
	ATTEntries   int
	ATTWays      int
	ATTMissTicks simtime.Ticks
	// DoorbellTicks is the PIO cost of ringing the doorbell,
	// WQEBaseTicks the cost of fetching and decoding one work queue
	// element, WQESGETicks the incremental cost per additional
	// scatter/gather element in the WQE (Figure 3's sub-linear growth).
	DoorbellTicks simtime.Ticks
	WQEBaseTicks  simtime.Ticks
	WQESGETicks   simtime.Ticks
	// CQETicks is the cost of writing and polling one completion entry.
	CQETicks simtime.Ticks
	// WireBandwidthMBs is the link bandwidth (4X SDR ≈ 1000 MB/s,
	// but the paper's PCIe InfiniHost reaches ≈ 1750 MB/s bidirectional
	// SendRecv, which is what IMB SendRecv reports).
	WireBandwidthMBs float64
	WireLatency      simtime.Ticks
	// MTTPushBatch is how many page translations the driver pushes to
	// the adapter per command; MTTPushTicks the cost of one command.
	MTTPushBatch int
	MTTPushTicks simtime.Ticks
	// SupportsHugeATT reports whether the adapter can hold one ATT entry
	// per 2 MiB page (the paper's OpenIB patch enables sending hugepage
	// translations; without it "the kernel pretends 4 KB pages").
	SupportsHugeATT bool
}

// Mem describes host memory timing.
type Mem struct {
	// PinTicks is the kernel cost to pin one small page (get_user_pages
	// path); TranslateTicks the cost to resolve one page's physical
	// address; SyscallTicks the fixed entry/exit cost of the
	// registration syscall.
	PinTicks       simtime.Ticks
	TranslateTicks simtime.Ticks
	SyscallTicks   simtime.Ticks
	// CopyBandwidthMBs is the memcpy bandwidth used for eager-protocol
	// bounce-buffer copies.
	CopyBandwidthMBs float64
	// TotalBytes is the physical memory size.
	TotalBytes int64
	// HugePool is the number of hugepages set aside in the hugetlbfs
	// pool at boot.
	HugePool int
}

// Machine bundles one complete test system.
type Machine struct {
	Name string
	CPU  CPU
	Bus  Bus
	HCA  HCA
	Mem  Mem
	// Ranks is the process count per node used in the NAS runs
	// (the paper benchmarks 2 nodes x 4 processes).
	RanksPerNode int
}

// Opteron returns the AMD Opteron + Mellanox InfiniHost/PCI-Express system
// (2.2 GHz dual-core x2, 2 GB RAM).
func Opteron() *Machine {
	return &Machine{
		Name: "amd-opteron-infinihost-pcie",
		CPU: CPU{
			Name:     "AMD Opteron 2.2GHz",
			ClockMHz: 2200,
			// Section 2: "AMD Opteron: 544" 4 KiB entries, 8 hugepage entries.
			TLB4K:       TLBGeometry{Entries: 544, Ways: 4},
			TLB2M:       TLBGeometry{Entries: 8, Ways: 4},
			WalkTicks:   30, // ~60 ns walk
			LineTicks:   26, // ~50 ns line fill
			PrefetchHit: 0.60,
		},
		Bus: Bus{
			Name:         "PCI-Express x8",
			BandwidthMBs: 3200,
			TxnTicks:     120,
			BurstBytes:   64,
			AlignPenalty: 18,
		},
		HCA: HCA{
			Name:          "Mellanox InfiniHost III",
			ATTEntries:    1024,
			ATTWays:       4,
			ATTMissTicks:  260,
			DoorbellTicks: 170,
			WQEBaseTicks:  280,
			WQESGETicks:   8,
			CQETicks:      110,
			// Per-direction wire rate; IMB SendRecv counts both
			// directions, so the reported plateau is ~2x this (~1750).
			WireBandwidthMBs: 880,
			WireLatency:      1400, // ~2.7 us one-way small-message
			MTTPushBatch:     32,
			MTTPushTicks:     900,
			SupportsHugeATT:  true,
		},
		Mem: Mem{
			PinTicks:         400, // ~0.8 us per page pin (get_user_pages)
			TranslateTicks:   120,
			SyscallTicks:     1300,
			CopyBandwidthMBs: 2600,
			TotalBytes:       2 << 30,
			HugePool:         512, // 1 GiB of hugepages
		},
		RanksPerNode: 4,
	}
}

// Xeon returns the Intel Xeon + Mellanox InfiniHost/PCI-X system
// (2.4 GHz, 2 hyperthreading CPUs, 2 GB RAM). The PCI-X bus is the
// bottleneck; its DMA path is sensitive to ATT misses, which is why this is
// the system where sending 2 MiB translations buys ≈ 6 % bandwidth.
func Xeon() *Machine {
	return &Machine{
		Name: "intel-xeon-infinihost-pcix",
		CPU: CPU{
			Name:        "Intel Xeon 2.4GHz",
			ClockMHz:    2400,
			TLB4K:       TLBGeometry{Entries: 64, Ways: 4},
			TLB2M:       TLBGeometry{Entries: 8, Ways: 4},
			WalkTicks:   38,
			LineTicks:   30,
			PrefetchHit: 0.45,
		},
		Bus: Bus{
			Name: "PCI-X 133",
			// Effective per-direction DMA rate under bidirectional load:
			// PCI-X is half-duplex, so gather and scatter share ~1 GB/s.
			BandwidthMBs: 520,
			TxnTicks:     300,
			BurstBytes:   128,
			AlignPenalty: 30,
		},
		HCA: HCA{
			Name:             "Mellanox InfiniHost",
			ATTEntries:       256,
			ATTWays:          4,
			ATTMissTicks:     240, // calibrated: ~6% bandwidth swing at 4 MiB (E4)
			DoorbellTicks:    220,
			WQEBaseTicks:     320,
			WQESGETicks:      10,
			CQETicks:         130,
			WireBandwidthMBs: 560, // per direction; PCI-X capped
			WireLatency:      2000,
			MTTPushBatch:     32,
			MTTPushTicks:     1100,
			SupportsHugeATT:  true,
		},
		Mem: Mem{
			PinTicks:         450,
			TranslateTicks:   130,
			SyscallTicks:     1500,
			CopyBandwidthMBs: 1800,
			TotalBytes:       2 << 30,
			HugePool:         512,
		},
		RanksPerNode: 4,
	}
}

// SystemP returns the IBM low-end System p + eHCA/GX system
// (1.65 GHz, 8 CPUs, 16 GB RAM) on which Figures 3 and 4 were measured.
func SystemP() *Machine {
	return &Machine{
		Name: "ibm-systemp-ehca-gx",
		CPU: CPU{
			Name:        "POWER5 1.65GHz",
			ClockMHz:    1650,
			TLB4K:       TLBGeometry{Entries: 512, Ways: 4},
			TLB2M:       TLBGeometry{Entries: 16, Ways: 4}, // POWER large-page entries are scarce too
			WalkTicks:   42,
			LineTicks:   34,
			PrefetchHit: 0.70, // POWER streams prefetchers are strong
		},
		Bus: Bus{
			Name:         "GX",
			BandwidthMBs: 2400,
			TxnTicks:     150,
			BurstBytes:   128,
			AlignPenalty: 75,
		},
		HCA: HCA{
			Name:             "IBM eHCA",
			ATTEntries:       512,
			ATTWays:          4,
			ATTMissTicks:     300,
			DoorbellTicks:    180,
			WQEBaseTicks:     270,
			WQESGETicks:      7,
			CQETicks:         120,
			WireBandwidthMBs: 760, // per direction
			WireLatency:      1700,
			MTTPushBatch:     32,
			MTTPushTicks:     950,
			SupportsHugeATT:  true,
		},
		Mem: Mem{
			PinTicks:         420,
			TranslateTicks:   125,
			SyscallTicks:     1400,
			CopyBandwidthMBs: 2200,
			TotalBytes:       16 << 30,
			HugePool:         2048,
		},
		RanksPerNode: 8,
	}
}

// ByName looks a machine up by its short name ("opteron", "xeon",
// "systemp") or full Name string. It returns nil if the name is unknown.
func ByName(name string) *Machine {
	switch name {
	case "opteron", "amd", Opteron().Name:
		return Opteron()
	case "xeon", "intel", Xeon().Name:
		return Xeon()
	case "systemp", "ibm", "power", SystemP().Name:
		return SystemP()
	}
	return nil
}

// All returns the three evaluated systems in the paper's order.
func All() []*Machine {
	return []*Machine{Opteron(), Xeon(), SystemP()}
}
