// Package faults is a deterministic, seed-configured fault-injection
// layer for the simulated InfiniBand stack. It drives the simulator
// into the degraded modes the paper's design only gestures at — the
// Figure 2 "enough hugepages available?" = no branch, registration
// failure under an RLIMIT_MEMLOCK ceiling, transient work-request
// completion errors, and ATT cache loss — without ever consulting a
// wall clock: every decision is a pure function of the configured seed,
// a per-node salt, a per-stream salt, and an event counter, so two runs
// of the same workload with the same spec are bit-identical (including
// under -race; the event counters are the only mutable state and each
// stream is consulted from a single logical order per node).
//
// A Spec is parsed from the -faults command-line string shared by every
// cmd tool; an Injector is the per-node instance the layers consult.
// All Injector methods are safe on a nil receiver (no fault spec = no
// faults, no overhead beyond a nil check).
package faults

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// Spec is one parsed fault-injection configuration. The zero value
// injects nothing; a nil *Spec is the canonical "faults disabled".
//
//reprolint:nilsafe
type Spec struct {
	// Seed selects the deterministic fault pattern. Two runs with the
	// same Seed (and same workload) observe identical fault sequences.
	Seed uint64

	// HugePoolCap caps the number of free hugepages a node's pool
	// exposes at attach time (pages beyond the cap are removed up
	// front), modeling a host whose hugetlbfs pool is smaller than the
	// machine description says. 0 = uncapped.
	HugePoolCap int

	// HugeFailPeriod makes roughly every Nth hugepage allocation fail
	// with ErrOutOfHugepages even when pages are free (spurious kernel
	// refusal). 0 = never.
	HugeFailPeriod uint64

	// ShrinkPeriod/ShrinkPages permanently remove up to ShrinkPages
	// free hugepages from the pool roughly every ShrinkPeriod-th
	// hugepage allocation — the pool shrinking mid-run (another
	// consumer on the host, or the administrator resizing nr_hugepages).
	ShrinkPeriod uint64
	ShrinkPages  int

	// MemlockBytes models RLIMIT_MEMLOCK: the verbs layer rejects any
	// registration that would push a node's pinned bytes above this
	// ceiling. 0 = unlimited.
	MemlockBytes int64

	// WRErrorPeriod makes roughly every Nth reaped completion a
	// transient work-request error (retryable; the MPI layer reposts
	// with deterministic backoff in virtual time). 0 = never.
	WRErrorPeriod uint64

	// ATTEvictPeriod forcibly evicts a cached HCA address translation
	// roughly every Nth access to it (the adapter invalidating stale
	// entries under pressure), forcing a refetch across the IO bus.
	// Decisions are keyed per translation, so the schedule replays
	// bit-identically even under concurrent DMA. 0 = never.
	ATTEvictPeriod uint64
}

// ParseSpec parses a -faults flag value of the form
//
//	seed=7,hugecap=8,hugefail=40,shrink=100:2,memlock=16m,wr=50,attevict=400
//
// Keys may appear in any order; unknown keys are an error. Byte values
// accept k/m/g suffixes (powers of 1024). An empty string returns
// (nil, nil): faults disabled.
func ParseSpec(s string) (*Spec, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	spec := &Spec{}
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("faults: %q is not key=value", field)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		var err error
		switch key {
		case "seed":
			spec.Seed, err = strconv.ParseUint(val, 10, 64)
		case "hugecap":
			spec.HugePoolCap, err = parseCount(val)
		case "hugefail":
			spec.HugeFailPeriod, err = strconv.ParseUint(val, 10, 64)
		case "shrink":
			per, pages, ok := strings.Cut(val, ":")
			if !ok {
				return nil, fmt.Errorf("faults: shrink wants PERIOD:PAGES, got %q", val)
			}
			if spec.ShrinkPeriod, err = strconv.ParseUint(per, 10, 64); err == nil {
				spec.ShrinkPages, err = parseCount(pages)
			}
		case "memlock":
			spec.MemlockBytes, err = parseBytes(val)
		case "wr":
			spec.WRErrorPeriod, err = strconv.ParseUint(val, 10, 64)
		case "attevict":
			spec.ATTEvictPeriod, err = strconv.ParseUint(val, 10, 64)
		default:
			return nil, fmt.Errorf("faults: unknown key %q (want seed, hugecap, hugefail, shrink, memlock, wr, attevict)", key)
		}
		if err != nil {
			return nil, fmt.Errorf("faults: bad %s value %q: %v", key, val, err)
		}
	}
	return spec, nil
}

func parseCount(s string) (int, error) {
	n, err := strconv.ParseInt(s, 10, 32)
	if err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("negative count %d", n)
	}
	return int(n), nil
}

func parseBytes(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "k"), strings.HasSuffix(s, "K"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "m"), strings.HasSuffix(s, "M"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "g"), strings.HasSuffix(s, "G"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, err
	}
	if n < 0 {
		return 0, fmt.Errorf("negative byte count %d", n)
	}
	return n * mult, nil
}

// String renders the spec in the canonical -faults syntax (set fields
// only, fixed order), so telemetry can echo the active configuration.
func (s *Spec) String() string {
	if s == nil {
		return ""
	}
	var parts []string
	add := func(k, v string) { parts = append(parts, k+"="+v) }
	add("seed", strconv.FormatUint(s.Seed, 10))
	if s.HugePoolCap > 0 {
		add("hugecap", strconv.Itoa(s.HugePoolCap))
	}
	if s.HugeFailPeriod > 0 {
		add("hugefail", strconv.FormatUint(s.HugeFailPeriod, 10))
	}
	if s.ShrinkPeriod > 0 {
		add("shrink", fmt.Sprintf("%d:%d", s.ShrinkPeriod, s.ShrinkPages))
	}
	if s.MemlockBytes > 0 {
		add("memlock", strconv.FormatInt(s.MemlockBytes, 10))
	}
	if s.WRErrorPeriod > 0 {
		add("wr", strconv.FormatUint(s.WRErrorPeriod, 10))
	}
	if s.ATTEvictPeriod > 0 {
		add("attevict", strconv.FormatUint(s.ATTEvictPeriod, 10))
	}
	return strings.Join(parts, ",")
}

// WRStream distinguishes the completion-error streams of concurrently
// running protocol halves. Sendrecv forks its send half onto a second
// goroutine; giving sends and receives independent event counters keeps
// the injected pattern independent of goroutine interleaving (each
// rank's send half and recv half are internally ordered).
type WRStream int

const (
	StreamWRSend WRStream = iota
	StreamWRRecv
	numWRStreams
)

// Stats counts the faults an Injector actually injected and the
// recoveries the stack reported back to it.
type Stats struct {
	HugeAllocFails int64 // injected spurious AllocHuge failures
	PoolShrinks    int64 // shrink events fired (pages removed counted by phys)
	WRErrors       int64 // injected transient completion errors
	WRRetries      int64 // completion retries performed by the MPI layer
	ATTEvictions   int64 // forced ATT cache flushes
}

// Injector is one node's fault source. Decisions are
// hash(seed, salt, stream, event#) — no wall clock, no shared state
// between nodes — so they replay identically run to run.
//
//reprolint:nilsafe
type Injector struct {
	spec *Spec
	salt uint64

	mu    sync.Mutex
	hugeN uint64
	attN  map[uint64]uint64 // per-translation access counters
	wrN   [numWRStreams]uint64
	st    Stats
}

// New builds a node's injector; salt (typically the rank number) keeps
// different nodes on different fault schedules. A nil spec returns a
// nil injector, on which every method is a no-op.
func New(spec *Spec, salt uint64) *Injector {
	if spec == nil {
		return nil
	}
	return &Injector{spec: spec, salt: salt}
}

// Spec returns the configuration behind the injector (nil if disabled).
func (in *Injector) Spec() *Spec {
	if in == nil {
		return nil
	}
	return in.spec
}

// splitmix64's finalizer: a cheap, well-mixed hash of the event index.
func mix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func (in *Injector) fire(period uint64, streamSalt, n uint64) bool {
	if period == 0 {
		return false
	}
	return mix(in.spec.Seed^in.salt*0x9E3779B97F4A7C15^streamSalt)%period == mix(n)%period
}

// HugeAllocFault is consulted once per AllocHuge call. fail asks the
// pool to refuse this allocation (ErrOutOfHugepages); shrink asks it to
// permanently drop up to that many free pages first.
func (in *Injector) HugeAllocFault() (fail bool, shrink int) {
	if in == nil {
		return false, 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	n := in.hugeN
	in.hugeN++
	if in.fire(in.spec.ShrinkPeriod, 0xA11C, n) {
		in.st.PoolShrinks++
		shrink = in.spec.ShrinkPages
	}
	if in.fire(in.spec.HugeFailPeriod, 0xFA17, n) {
		in.st.HugeAllocFails++
		fail = true
	}
	return fail, shrink
}

// WRError is consulted once per reaped completion on the given stream;
// true means this completion came back as a transient error and the
// work request must be retried.
func (in *Injector) WRError(stream WRStream) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	n := in.wrN[stream]
	in.wrN[stream]++
	if in.fire(in.spec.WRErrorPeriod, 0xE440+uint64(stream), n) {
		in.st.WRErrors++
		return true
	}
	return false
}

// RecordWRRetry is called by the MPI layer each time it reposts a work
// request after an injected transient error.
func (in *Injector) RecordWRRetry() {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.st.WRRetries++
	in.mu.Unlock()
}

// ATTEvict is consulted once per ATT access with a key identifying the
// translation (lkey, page); true forces that cached translation out
// before the access is served. Counters are kept per key: a key's Nth
// access always gets the same verdict no matter how accesses to other
// keys interleave with it, which is what keeps the fault pattern
// deterministic while Sendrecv's two halves drive one adapter
// concurrently.
func (in *Injector) ATTEvict(key uint64) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.attN == nil {
		in.attN = make(map[uint64]uint64)
	}
	n := in.attN[key]
	in.attN[key] = n + 1
	if in.fire(in.spec.ATTEvictPeriod, 0xA77E^mix(key), n) {
		in.st.ATTEvictions++
		return true
	}
	return false
}

// MemlockLimit returns the configured RLIMIT_MEMLOCK ceiling in bytes
// (0 = unlimited).
func (in *Injector) MemlockLimit() int64 {
	if in == nil || in.spec == nil {
		return 0
	}
	return in.spec.MemlockBytes
}

// HugePoolCap returns the configured pool cap (0 = uncapped).
func (in *Injector) HugePoolCap() int {
	if in == nil || in.spec == nil {
		return 0
	}
	return in.spec.HugePoolCap
}

// Stats snapshots the injected-fault counters.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.st
}
