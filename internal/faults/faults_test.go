package faults

import "testing"

func TestParseSpecEmpty(t *testing.T) {
	for _, s := range []string{"", "   "} {
		spec, err := ParseSpec(s)
		if err != nil || spec != nil {
			t.Fatalf("ParseSpec(%q) = %v, %v; want nil, nil", s, spec, err)
		}
	}
}

func TestParseSpecFull(t *testing.T) {
	spec, err := ParseSpec("seed=7,hugecap=8,hugefail=40,shrink=100:2,memlock=16m,wr=50,attevict=400")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{
		Seed: 7, HugePoolCap: 8, HugeFailPeriod: 40,
		ShrinkPeriod: 100, ShrinkPages: 2,
		MemlockBytes: 16 << 20, WRErrorPeriod: 50, ATTEvictPeriod: 400,
	}
	if *spec != want {
		t.Fatalf("got %+v, want %+v", *spec, want)
	}
}

func TestParseSpecByteSuffixes(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want int64
	}{
		{"memlock=512", 512},
		{"memlock=4k", 4 << 10},
		{"memlock=16M", 16 << 20},
		{"memlock=2g", 2 << 30},
	} {
		spec, err := ParseSpec(tc.in)
		if err != nil {
			t.Fatalf("%s: %v", tc.in, err)
		}
		if spec.MemlockBytes != tc.want {
			t.Errorf("%s: got %d, want %d", tc.in, spec.MemlockBytes, tc.want)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, s := range []string{
		"bogus=1",    // unknown key
		"seed",       // not key=value
		"seed=x",     // bad number
		"shrink=100", // missing :PAGES
		"memlock=-1", // negative
		"hugecap=-3", // negative
		"memlock=1t", // unknown suffix
	} {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) accepted", s)
		}
	}
}

func TestSpecStringRoundTrip(t *testing.T) {
	const in = "seed=7,hugecap=8,hugefail=40,shrink=100:2,memlock=16777216,wr=50,attevict=400"
	spec, err := ParseSpec(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.String(); got != in {
		t.Fatalf("String() = %q, want %q", got, in)
	}
	again, err := ParseSpec(spec.String())
	if err != nil {
		t.Fatal(err)
	}
	if *again != *spec {
		t.Fatalf("round trip changed the spec: %+v vs %+v", again, spec)
	}
	var nilSpec *Spec
	if nilSpec.String() != "" {
		t.Fatal("nil spec should render empty")
	}
}

func TestNilInjectorIsSafeAndInert(t *testing.T) {
	var in *Injector
	if in != New(nil, 3) {
		t.Fatal("New(nil, salt) should return a nil injector")
	}
	if fail, shrink := in.HugeAllocFault(); fail || shrink != 0 {
		t.Fatal("nil injector injected a hugepage fault")
	}
	if in.WRError(StreamWRSend) || in.WRError(StreamWRRecv) {
		t.Fatal("nil injector injected a WR error")
	}
	if in.ATTEvict(42) {
		t.Fatal("nil injector forced an ATT evict")
	}
	in.RecordWRRetry()
	if in.MemlockLimit() != 0 || in.HugePoolCap() != 0 {
		t.Fatal("nil injector reported limits")
	}
	if in.Stats() != (Stats{}) || in.Spec() != nil {
		t.Fatal("nil injector reported state")
	}
}

// drive pulls a fixed event schedule through an injector and returns the
// decision sequence as a bitstring per fault class.
func drive(in *Injector, events int) (huge, wrS, wrR, att string) {
	b := func(v bool) byte {
		if v {
			return '1'
		}
		return '0'
	}
	hb := make([]byte, 0, events)
	sb := make([]byte, 0, events)
	rb := make([]byte, 0, events)
	ab := make([]byte, 0, events)
	for i := 0; i < events; i++ {
		fail, _ := in.HugeAllocFault()
		hb = append(hb, b(fail))
		sb = append(sb, b(in.WRError(StreamWRSend)))
		rb = append(rb, b(in.WRError(StreamWRRecv)))
		ab = append(ab, b(in.ATTEvict(uint64(i%3))))
	}
	return string(hb), string(sb), string(rb), string(ab)
}

func TestSameSeedSameSchedule(t *testing.T) {
	spec, err := ParseSpec("seed=7,hugefail=5,wr=7,attevict=11")
	if err != nil {
		t.Fatal(err)
	}
	h1, s1, r1, a1 := drive(New(spec, 0), 500)
	h2, s2, r2, a2 := drive(New(spec, 0), 500)
	if h1 != h2 || s1 != s2 || r1 != r2 || a1 != a2 {
		t.Fatal("same seed+salt produced different schedules")
	}
	// The schedule actually fires (a period-P pattern over 500 events
	// must hit at least once).
	if !fired(h1) || !fired(s1) || !fired(a1) {
		t.Fatalf("schedules never fired: huge=%q send=%q att=%q", h1, s1, a1)
	}
}

func fired(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == '1' {
			return true
		}
	}
	return false
}

func TestSaltDecorrelatesNodes(t *testing.T) {
	spec, err := ParseSpec("seed=7,hugefail=5,wr=7,attevict=11")
	if err != nil {
		t.Fatal(err)
	}
	h0, s0, _, a0 := drive(New(spec, 0), 500)
	h1, s1, _, a1 := drive(New(spec, 1), 500)
	if h0 == h1 && s0 == s1 && a0 == a1 {
		t.Fatal("different salts produced identical schedules")
	}
}

func TestStreamsAreIndependent(t *testing.T) {
	spec, err := ParseSpec("seed=3,wr=4")
	if err != nil {
		t.Fatal(err)
	}
	// Consuming extra events on the send stream must not move the recv
	// stream's decisions (this is what keeps Sendrecv's forked halves
	// deterministic under goroutine interleaving).
	inA := New(spec, 0)
	inB := New(spec, 0)
	for i := 0; i < 37; i++ {
		inA.WRError(StreamWRSend)
	}
	got := make([]bool, 40)
	want := make([]bool, 40)
	for i := range got {
		got[i] = inA.WRError(StreamWRRecv)
		want[i] = inB.WRError(StreamWRRecv)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("recv stream decision %d shifted after send-stream traffic", i)
		}
	}
}

func TestATTEvictKeysAreIndependent(t *testing.T) {
	spec, err := ParseSpec("seed=9,attevict=5")
	if err != nil {
		t.Fatal(err)
	}
	// Key 2's verdict sequence must not shift when accesses to key 1 are
	// interleaved with it — this is what keeps the ATT fault pattern
	// deterministic under concurrent DMA.
	inA := New(spec, 0)
	inB := New(spec, 0)
	for i := 0; i < 50; i++ {
		inA.ATTEvict(1) // extra traffic on another translation
		if inA.ATTEvict(2) != inB.ATTEvict(2) {
			t.Fatalf("key-2 decision %d shifted after key-1 traffic", i)
		}
	}
}

func TestStatsCountInjections(t *testing.T) {
	spec, err := ParseSpec("seed=1,hugefail=3,shrink=5:2,wr=3,attevict=3")
	if err != nil {
		t.Fatal(err)
	}
	in := New(spec, 0)
	for i := 0; i < 300; i++ {
		in.HugeAllocFault()
		in.WRError(StreamWRSend)
		in.ATTEvict(7)
	}
	in.RecordWRRetry()
	st := in.Stats()
	if st.HugeAllocFails == 0 || st.PoolShrinks == 0 || st.WRErrors == 0 || st.ATTEvictions == 0 {
		t.Fatalf("expected all classes to fire over 300 events: %+v", st)
	}
	if st.WRRetries != 1 {
		t.Fatalf("WRRetries = %d, want 1", st.WRRetries)
	}
}
