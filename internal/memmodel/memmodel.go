// Package memmodel turns memory-access patterns into compute time and
// TLB behaviour — the substrate behind the paper's Section 5.2 findings:
// hugepages can raise TLB misses dramatically (up to 8x on NAS EP,
// because the Opteron has only 8 hugepage DTLB entries) while
// simultaneously speeding computation up (the prefetcher streams across
// large physically contiguous extents without restarting at every 4 KiB
// physical discontinuity).
//
// Patterns drive the rank's actual tlb.DTLB simulator with a
// deterministic sample of the access stream (capped, then scaled), so
// PAPI-style counters come from simulation rather than formulas; the
// prefetch model is analytic and documented per pattern.
package memmodel

import (
	"repro/internal/machine"
	"repro/internal/simtime"
	"repro/internal/tlb"
	"repro/internal/vm"
)

// sampleCap bounds how many accesses are simulated per Apply call; the
// remainder is scaled from the sampled miss rate. Large enough that
// set-associativity effects settle, small enough to keep NAS runs fast.
const sampleCap = 1 << 15

// restartLines is how many cache lines a hardware prefetch stream needs
// to re-arm after hitting a physical discontinuity; during re-arming the
// full line cost is paid.
const restartLines = 4

// Result is the outcome of applying one pattern.
type Result struct {
	Accesses  int64 // cache-line touches issued
	TLBMisses int64 // estimated DTLB misses over the full stream
	Hidden    int64 // line touches whose latency the prefetcher hid
	Ticks     simtime.Ticks
}

// Region describes one buffer as placed in memory.
type Region struct {
	VA    vm.VA
	Bytes uint64
	Class vm.PageClass
}

// PageSize returns the region's translation granule.
func (rg Region) PageSize() uint64 { return rg.Class.Size() }

// Pattern is one memory-access behaviour.
type Pattern interface {
	// Apply charges the pattern against the CPU + DTLB and returns the
	// modelled result. The DTLB's counters advance by the *sampled*
	// accesses; Result.TLBMisses is the scaled full-stream estimate.
	Apply(cpu *machine.CPU, d *tlb.DTLB, rg Region) Result
	Name() string
}

// simulate drives the DTLB with a sample of the access stream defined by
// gen (access i -> VA) and returns the scaled miss estimate.
func simulate(d *tlb.DTLB, rg Region, total int64, gen func(i int64) vm.VA) int64 {
	if total <= 0 {
		return 0
	}
	n := total
	if n > sampleCap {
		n = sampleCap
	}
	// Simulate a prefix of the stream and scale: prefix sampling keeps
	// the access distribution intact (strided subsampling would alias
	// with periodic patterns like table rotation).
	misses := int64(0)
	for i := int64(0); i < n; i++ {
		if d.Access(gen(i), rg.Class) > 0 {
			misses++
		}
	}
	return misses * total / n
}

// lineCost returns the tick cost of the line touches minus the prefetch-
// hidden fraction, plus the TLB walk penalty.
func lineCost(cpu *machine.CPU, lines, hidden, misses int64) simtime.Ticks {
	visible := lines - hidden
	if visible < 0 {
		visible = 0
	}
	return simtime.Ticks(visible)*cpu.LineTicks +
		simtime.Ticks(hidden)*cpu.LineTicks/8 + // hidden lines still retire
		simtime.Ticks(misses)*cpu.WalkTicks
}

// SeqScan streams sequentially over the region Passes times — the dense
// loops of CG/MG/LU. The prefetcher hides CPU.PrefetchHit of line
// latency, but every physical discontinuity (a page boundary on 4 KiB
// mappings, a 2 MiB boundary on hugepages) forces a stream restart that
// exposes restartLines full-cost lines; this is where hugepages win
// compute time.
type SeqScan struct {
	Passes int
}

// Name implements Pattern.
func (SeqScan) Name() string { return "seqscan" }

// Apply implements Pattern.
func (s SeqScan) Apply(cpu *machine.CPU, d *tlb.DTLB, rg Region) Result {
	passes := int64(s.Passes)
	if passes <= 0 || rg.Bytes == 0 {
		return Result{}
	}
	linesPerPass := int64(rg.Bytes+machine.CacheLineSize-1) / machine.CacheLineSize
	lines := linesPerPass * passes
	pagesPerPass := int64((rg.Bytes + rg.PageSize() - 1) / rg.PageSize())
	totalPageTouches := pagesPerPass * passes
	misses := simulate(d, rg, totalPageTouches, func(i int64) vm.VA {
		pass := i / pagesPerPass
		idx := i % pagesPerPass
		_ = pass
		return rg.VA + vm.VA(uint64(idx)*rg.PageSize())
	})
	restarts := totalPageTouches // one stream restart per physical extent boundary
	exposed := restarts * restartLines
	if exposed > lines {
		exposed = lines
	}
	hidden := int64(float64(lines-exposed) * cpu.PrefetchHit)
	return Result{
		Accesses:  lines,
		TLBMisses: misses,
		Hidden:    hidden,
		Ticks:     lineCost(cpu, lines, hidden, misses),
	}
}

// Strided touches one line every Stride bytes, Passes times — matrix
// column walks (LU). Prefetchers track constant strides up to a limit, so
// long strides lose prefetch help entirely.
type Strided struct {
	Stride uint64
	Passes int
}

// Name implements Pattern.
func (Strided) Name() string { return "strided" }

// maxPrefetchStride is the largest stride hardware stream detectors track.
const maxPrefetchStride = 512

// Apply implements Pattern.
func (s Strided) Apply(cpu *machine.CPU, d *tlb.DTLB, rg Region) Result {
	if s.Stride == 0 || rg.Bytes == 0 || s.Passes <= 0 {
		return Result{}
	}
	perPass := int64(rg.Bytes / s.Stride)
	if perPass == 0 {
		perPass = 1
	}
	total := perPass * int64(s.Passes)
	misses := simulate(d, rg, total, func(i int64) vm.VA {
		idx := i % perPass
		return rg.VA + vm.VA(uint64(idx)*s.Stride)
	})
	var hidden int64
	if s.Stride <= maxPrefetchStride {
		// Same restart logic as SeqScan, but restarts happen per page
		// regardless of stride (fewer useful lines between restarts).
		restarts := total * int64(s.Stride) / int64(rg.PageSize())
		exposed := restarts * restartLines
		if exposed > total {
			exposed = total
		}
		hidden = int64(float64(total-exposed) * cpu.PrefetchHit)
	}
	return Result{
		Accesses:  total,
		TLBMisses: misses,
		Hidden:    hidden,
		Ticks:     lineCost(cpu, total, hidden, misses),
	}
}

// Random touches Count lines uniformly pseudo-randomly over the region —
// IS histogramming, CG's indirect gathers. No prefetch help; TLB
// behaviour is pure working-set vs reach.
type Random struct {
	Count int64
	Seed  uint64
}

// Name implements Pattern.
func (Random) Name() string { return "random" }

// Apply implements Pattern.
func (r Random) Apply(cpu *machine.CPU, d *tlb.DTLB, rg Region) Result {
	if r.Count <= 0 || rg.Bytes == 0 {
		return Result{}
	}
	state := r.Seed*2862933555777941757 + 3037000493
	misses := simulate(d, rg, r.Count, func(i int64) vm.VA {
		x := state + uint64(i)*0x9E3779B97F4A7C15
		x ^= x >> 31
		x *= 0xD6E8FEB86659FD93
		x ^= x >> 27
		off := (x % (rg.Bytes / machine.CacheLineSize)) * machine.CacheLineSize
		return rg.VA + vm.VA(off)
	})
	return Result{
		Accesses:  r.Count,
		TLBMisses: misses,
		Ticks:     lineCost(cpu, r.Count, 0, misses),
	}
}

// ScatteredTables models EP-style access: Count touches rotating over
// NumTables small hot tables, each TableBytes big, spread out so each
// lands in a different page mapping. In small pages every table needs a
// handful of the 544 entries — all hits. In hugepages each table burns a
// whole entry of the tiny hugepage file, and with NumTables above its
// capacity the file thrashes: the 8x EP miss blowup of Section 5.2.
type ScatteredTables struct {
	NumTables  int
	TableBytes uint64
	Count      int64
	// SpreadBytes is the VA distance between consecutive tables within
	// the region (defaults to one hugepage so each table sits in its own
	// hugepage mapping).
	SpreadBytes uint64
}

// Name implements Pattern.
func (ScatteredTables) Name() string { return "scattered-tables" }

// Apply implements Pattern.
func (sc ScatteredTables) Apply(cpu *machine.CPU, d *tlb.DTLB, rg Region) Result {
	if sc.Count <= 0 || sc.NumTables <= 0 {
		return Result{}
	}
	spread := sc.SpreadBytes
	if spread == 0 {
		spread = machine.HugePageSize
	}
	misses := simulate(d, rg, sc.Count, func(i int64) vm.VA {
		table := uint64(i) % uint64(sc.NumTables)
		off := (uint64(i) * 67 * machine.CacheLineSize) % sc.TableBytes
		return rg.VA + vm.VA(table*spread+off)
	})
	// Hot tables live in cache; line touches are cheap, misses dominate.
	hidden := sc.Count * 7 / 8
	return Result{
		Accesses:  sc.Count,
		TLBMisses: misses,
		Hidden:    hidden,
		Ticks:     lineCost(cpu, sc.Count, hidden, misses),
	}
}
