package memmodel

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/tlb"
	"repro/internal/vm"
)

func opteronCPU() *machine.CPU {
	cpu := machine.Opteron().CPU
	return &cpu
}

func region(class vm.PageClass, bytes uint64) Region {
	base := vm.VA(0x2000_0000_0000)
	if class == vm.Huge {
		base = vm.VA(0x4000_0000_0000)
	}
	return Region{VA: base, Bytes: bytes, Class: class}
}

func TestSeqScanHugepagesReduceMissesAndTime(t *testing.T) {
	cpu := opteronCPU()
	// 64 MiB scanned: far beyond both TLB reaches, so per-page cold
	// misses dominate: 16384 small pages vs 32 hugepages per pass.
	small := SeqScan{Passes: 4}.Apply(cpu, tlb.New(cpu), region(vm.Small, 64<<20))
	huge := SeqScan{Passes: 4}.Apply(cpu, tlb.New(cpu), region(vm.Huge, 64<<20))
	if huge.TLBMisses*100 > small.TLBMisses {
		t.Fatalf("hugepage seq misses %d should be ~1/512 of small %d", huge.TLBMisses, small.TLBMisses)
	}
	if huge.Ticks >= small.Ticks {
		t.Fatalf("hugepage scan %v not faster than small-page scan %v", huge.Ticks, small.Ticks)
	}
	improvement := 1 - float64(huge.Ticks)/float64(small.Ticks)
	if improvement < 0.01 || improvement > 0.30 {
		t.Fatalf("seq-scan compute improvement %.1f%% outside the plausible band", improvement*100)
	}
}

func TestScatteredTablesHugepageBlowup(t *testing.T) {
	// The Section 5.2 effect: EP's scattered small tables fit the 544
	// 4 KiB entries but thrash the 8 hugepage entries — misses increase
	// "up to eight times", so require >= 4x here.
	cpu := opteronCPU()
	pat := ScatteredTables{NumTables: 48, TableBytes: 2048, Count: 400_000}
	small := pat.Apply(cpu, tlb.New(cpu), region(vm.Small, 48*machine.HugePageSize))
	huge := pat.Apply(cpu, tlb.New(cpu), region(vm.Huge, 48*machine.HugePageSize))
	if small.TLBMisses == 0 {
		t.Fatal("expected some cold misses on small pages")
	}
	ratio := float64(huge.TLBMisses) / float64(small.TLBMisses)
	if ratio < 4 {
		t.Fatalf("hugepage miss blowup %.1fx, want >= 4x", ratio)
	}
	t.Logf("scattered tables: small=%d huge=%d (%.1fx)", small.TLBMisses, huge.TLBMisses, ratio)
}

func TestRandomWorkingSetVsReach(t *testing.T) {
	cpu := opteronCPU()
	// Working set inside the 4K reach (544*4K ~ 2.1 MiB): warm misses ~ 0.
	d := tlb.New(cpu)
	fit := Random{Count: 200_000, Seed: 1}.Apply(cpu, d, region(vm.Small, 1<<20))
	if rate := float64(fit.TLBMisses) / float64(fit.Accesses); rate > 0.05 {
		t.Fatalf("in-reach random miss rate %.3f, want ~0", rate)
	}
	// Working set 64 MiB >> reach: high miss rate.
	d2 := tlb.New(cpu)
	spill := Random{Count: 200_000, Seed: 1}.Apply(cpu, d2, region(vm.Small, 64<<20))
	if rate := float64(spill.TLBMisses) / float64(spill.Accesses); rate < 0.5 {
		t.Fatalf("over-reach random miss rate %.3f, want > 0.5", rate)
	}
	// The same 64 MiB in hugepages fits in 32 entries... but the Opteron
	// has only 8, so it still misses — yet far less than 4K.
	d3 := tlb.New(cpu)
	hspill := Random{Count: 200_000, Seed: 1}.Apply(cpu, d3, region(vm.Huge, 64<<20))
	if hspill.TLBMisses >= spill.TLBMisses {
		t.Fatal("hugepages should cut random-access misses on a 64MiB set")
	}
}

func TestStridedPrefetchCutoff(t *testing.T) {
	cpu := opteronCPU()
	short := Strided{Stride: 256, Passes: 2}.Apply(cpu, tlb.New(cpu), region(vm.Small, 8<<20))
	long := Strided{Stride: 4096, Passes: 2}.Apply(cpu, tlb.New(cpu), region(vm.Small, 8<<20))
	if short.Hidden == 0 {
		t.Fatal("short stride should get prefetch help")
	}
	if long.Hidden != 0 {
		t.Fatal("page-sized stride should get no prefetch help")
	}
}

func TestZeroInputsAreSafe(t *testing.T) {
	cpu := opteronCPU()
	d := tlb.New(cpu)
	for _, p := range []Pattern{SeqScan{}, Strided{}, Random{}, ScatteredTables{}} {
		res := p.Apply(cpu, d, region(vm.Small, 1<<20))
		if res.Accesses != 0 || res.Ticks != 0 {
			t.Fatalf("%s: zero pattern produced work", p.Name())
		}
	}
}

func TestResultsAreDeterministic(t *testing.T) {
	cpu := opteronCPU()
	a := Random{Count: 100_000, Seed: 9}.Apply(cpu, tlb.New(cpu), region(vm.Huge, 32<<20))
	b := Random{Count: 100_000, Seed: 9}.Apply(cpu, tlb.New(cpu), region(vm.Huge, 32<<20))
	if a != b {
		t.Fatalf("nondeterministic results: %+v vs %+v", a, b)
	}
}

func TestDTLBCountersAdvance(t *testing.T) {
	cpu := opteronCPU()
	d := tlb.New(cpu)
	SeqScan{Passes: 1}.Apply(cpu, d, region(vm.Huge, 16<<20))
	if d.Large.Stats().Accesses() == 0 {
		t.Fatal("pattern did not drive the hugepage TLB file")
	}
	if d.Small.Stats().Accesses() != 0 {
		t.Fatal("hugepage pattern touched the 4K file")
	}
}
