#!/bin/sh
# service_smoke.sh — end-to-end proof of the content-addressed result
# store, batch and daemon:
#
#   1. A cold sweeprun -cache run of the seed grid populates the store;
#      a warm re-run executes zero replicates and reproduces both the
#      cold output and the committed BENCH_seed.json byte for byte.
#   2. A live sweepd answers a re-submitted smoke grid entirely from
#      cache (runs_executed=0) with a byte-identical stripped BENCH
#      view, refuses a baseline it does not have, and exits cleanly on
#      SIGTERM.
#
# Requires: go, curl, cmp. Run from the repository root (make service).
set -eu

workdir=$(mktemp -d)
trap 'status=$?; [ -n "${daemon_pid:-}" ] && kill "$daemon_pid" 2>/dev/null; rm -rf "$workdir"; exit $status' EXIT INT TERM

say() { echo "service_smoke: $*"; }

go build -o "$workdir/sweeprun" ./cmd/sweeprun
go build -o "$workdir/sweepd" ./cmd/sweepd

# --- 1. batch: cold run populates, warm run executes nothing ---------

cache="$workdir/cache"
say "cold seed-grid run (populates $cache)"
"$workdir/sweeprun" -grid seed -cache "$cache" \
    -o "$workdir/cold.json" 2> "$workdir/cold.log"
grep -q 'cached=0' "$workdir/cold.log" || {
    say "cold run unexpectedly hit the cache:"; cat "$workdir/cold.log"; exit 1; }

say "warm seed-grid run (must execute zero replicates)"
"$workdir/sweeprun" -grid seed -cache "$cache" \
    -o "$workdir/warm.json" 2> "$workdir/warm.log"
grep -q 'executed=0' "$workdir/warm.log" || {
    say "warm run executed cells:"; cat "$workdir/warm.log"; exit 1; }

cmp "$workdir/cold.json" "$workdir/warm.json"
cmp "$workdir/warm.json" BENCH_seed.json
say "warm run reproduced committed BENCH_seed.json byte for byte"

# --- 2. daemon: resubmission served from cache -----------------------

addr="localhost:18473"
"$workdir/sweepd" -addr "$addr" -cache "$workdir/dcache" -bench-dir . \
    2> "$workdir/sweepd.log" &
daemon_pid=$!

say "waiting for sweepd on $addr"
i=0
until curl -sf "http://$addr/healthz" > /dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || { say "sweepd never came up:"; cat "$workdir/sweepd.log"; exit 1; }
    kill -0 "$daemon_pid" 2>/dev/null || { say "sweepd died:"; cat "$workdir/sweepd.log"; exit 1; }
    sleep 0.1
done

submit() {
    curl -sf -X POST "http://$addr/grids" -d '{"name":"smoke"}' |
        sed -n 's/.*"id":"\([^"]*\)".*/\1/p'
}

job1=$(submit)
say "submitted smoke grid as $job1"
curl -sf "http://$addr/jobs/$job1?wait=1" > "$workdir/job1.json"
grep -q '"state":"done"' "$workdir/job1.json" || { cat "$workdir/job1.json"; exit 1; }

job2=$(submit)
say "re-submitted smoke grid as $job2"
curl -sf "http://$addr/jobs/$job2?wait=1" > "$workdir/job2.json"
grep -q '"state":"done"' "$workdir/job2.json" || { cat "$workdir/job2.json"; exit 1; }
grep -q '"runs_executed":0' "$workdir/job2.json" || {
    say "re-submitted grid was not served from cache:"; cat "$workdir/job2.json"; exit 1; }

curl -sf "http://$addr/jobs/$job1/bench?view=stripped" > "$workdir/bench1.json"
curl -sf "http://$addr/jobs/$job2/bench?view=stripped" > "$workdir/bench2.json"
cmp "$workdir/bench1.json" "$workdir/bench2.json"
say "cached job served a byte-identical stripped BENCH view"

curl -sf "http://$addr/bench/seed" > /dev/null || {
    say "committed baseline endpoint failed"; exit 1; }
if curl -sf "http://$addr/bench/absent" > /dev/null 2>&1; then
    say "absent baseline did not 404"; exit 1
fi

say "draining sweepd (SIGTERM)"
kill -TERM "$daemon_pid"
wait "$daemon_pid" || { say "sweepd exited non-zero:"; cat "$workdir/sweepd.log"; exit 1; }
daemon_pid=""

say "ok"
